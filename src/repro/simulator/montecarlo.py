"""Monte-Carlo estimation harnesses.

Three fault-injection validators:

* :func:`gillespie_fail_probability` — stochastic simulation (SSA) of a
  memory model's *own* transition rule.  Converges to the CTMC transient
  solution by construction, so it validates the analytical solvers.
* :func:`simulate_fail_probability` — bit-level fault injection through
  the real codec and arbiter (:mod:`repro.simulator.systems`).  Validates
  that the paper's Markov abstraction (erasures-as-located faults, flags,
  masking, capability conditions) tracks "physical" behaviour, including
  effects the chains idealize away (mis-corrections, benign stuck-ats,
  repeated SEUs on one symbol).  One trial at a time, trusted reference.
* :func:`simulate_fail_probability_batched` — the same physics executed
  by the batch layer: trials are processed in chunks whose fault events
  are drawn vectorized from per-chunk spawned RNG streams, final reads
  (and duplex replica pairs) go through :class:`~repro.rs.batch.BatchRSCodec`
  in bulk, and an opt-in ``workers=N`` pool distributes chunks across
  processes.  Because every chunk owns an independent spawned
  ``SeedSequence`` and the aggregation is a commutative sum over chunks,
  a fixed ``(seed, trials, chunk_size)`` triple yields an identical
  :class:`FailureEstimate` for any worker count.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..memory.base import FAIL, MemoryMarkovModel
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..perf import PerfCounters, Stopwatch
from ..rs import BatchRSCodec, RSCode, RSDecodingError
from ..rs.backends import create_backend
from ..runtime import ChunkSupervisor, RuntimeConfig, seed_key
from ..stats import AdaptiveStopper, BerSnapshot, StreamingEstimator
from ..stats.intervals import wilson_interval  # noqa: F401  (moved; re-exported)
from .arbiter import decide_from_decodes, recover_erasures
from .faults import (
    FaultEvent,
    FaultKind,
    event_sort_key,
    merge_event_streams,
    sample_permanent_events,
    sample_seu_events,
    scrub_schedule,
)
from .patterns import (
    IID_1BIT,
    FaultPattern,
    RateSchedule,
    expand_arrivals,
    format_pattern,
    format_schedule,
    parse_pattern,
    parse_schedule,
    sample_pattern_events,
)
from .systems import DuplexSystem, ReadOutcome, SimplexSystem

PatternLike = Union[str, FaultPattern, None]
ScheduleLike = Union[str, "RateSchedule", None]


@dataclass(frozen=True)
class FailureEstimate:
    """A Monte-Carlo failure-probability estimate with a Wilson interval."""

    probability: float
    trials: int
    failures: int
    ci_low: float
    ci_high: float
    outcome_counts: Optional[Dict[str, int]] = None
    #: True when an adaptive stopping rule ended the run before the full
    #: trial budget; ``trials`` then counts only the chunks actually used.
    stopped_early: bool = False

    def consistent_with(self, p: float) -> bool:
        """True if ``p`` lies inside the 95% confidence interval."""
        return self.ci_low <= p <= self.ci_high

    @property
    def silent_miscorrections(self) -> Optional[int]:
        """Reads that "succeeded" with wrong data (decoder miscorrected).

        The headline robustness casualty under beyond-capacity
        correlated faults: the i.i.d. analytic model cannot see these.
        ``None`` when the estimator did not classify outcomes.
        """
        if self.outcome_counts is None:
            return None
        return self.outcome_counts.get(ReadOutcome.CORRUPTED.value, 0)

    @property
    def detected_uncorrectable(self) -> Optional[int]:
        """Reads the decoder/arbiter refused — failures, but *detected*."""
        if self.outcome_counts is None:
            return None
        return self.outcome_counts.get(ReadOutcome.UNREADABLE.value, 0)


# --------------------------------------------------------------------------
# SSA on the Markov model itself
# --------------------------------------------------------------------------


def gillespie_fail_probability(
    model: MemoryMarkovModel,
    t_end: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
) -> FailureEstimate:
    """Estimate ``P_Fail(t_end)`` by direct SSA on the model's transitions.

    Each trial walks the chain with exponential holding times until
    ``t_end`` or absorption into FAIL.  The estimate converges to the
    transient CTMC solution, making this an end-to-end check of the
    chain construction *and* the numerical solvers.
    """
    if rng is None:
        rng = np.random.default_rng()
    failures = 0
    for _ in range(trials):
        state = model.initial_state()
        t = 0.0
        while True:
            moves = list(model.transitions(state))
            total = sum(rate for _s, rate in moves)
            if total <= 0.0:
                break  # absorbing
            t += rng.exponential(1.0 / total)
            if t >= t_end:
                break
            pick = rng.uniform(0.0, total)
            acc = 0.0
            for nxt, rate in moves:
                acc += rate
                if pick <= acc:
                    state = nxt
                    break
        if state == FAIL:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(failures / trials, trials, failures, low, high)


# --------------------------------------------------------------------------
# bit-level fault injection through the codec
# --------------------------------------------------------------------------


def simulate_read_outcome(
    arrangement: str,
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    rng: np.random.Generator,
    scrub_period: float | None = None,
    scrub_exponential: bool = False,
    pattern: PatternLike = None,
    schedule: ScheduleLike = None,
) -> ReadOutcome:
    """One fault-injection trial: inject events over ``[0, t_end]``, then read.

    ``arrangement`` is ``"simplex"`` or ``"duplex"``.  Rates share the time
    unit of ``t_end`` and ``scrub_period``.  ``pattern``/``schedule``
    switch the transient process from the paper's i.i.d. SEU model to a
    correlated compound-Poisson mixture (:mod:`repro.simulator.patterns`);
    the base permanent-fault process is unaffected.
    """
    if arrangement == "simplex":
        system: SimplexSystem | DuplexSystem = SimplexSystem(code, rng=rng)
        n_modules = 1
    elif arrangement == "duplex":
        system = DuplexSystem(code, rng=rng)
        n_modules = 2
    else:
        raise ValueError(f"unknown arrangement {arrangement!r}")

    use_patterns = pattern is not None or schedule is not None
    if use_patterns:
        pat = parse_pattern(pattern) if pattern is not None else IID_1BIT
        sched = parse_schedule(schedule)

    streams = []
    for module in range(n_modules):
        if use_patterns:
            streams.append(
                sample_pattern_events(
                    rng,
                    pat,
                    seu_per_bit,
                    code.n,
                    code.m,
                    t_end,
                    module=module,
                    schedule=sched,
                )
            )
        else:
            streams.append(
                sample_seu_events(
                    rng, seu_per_bit, code.n, code.m, t_end, module
                )
            )
        streams.append(
            sample_permanent_events(
                rng, erasure_per_symbol, code.n, code.m, t_end, module
            )
        )
    streams.append(
        scrub_schedule(t_end, scrub_period, rng=rng, exponential=scrub_exponential)
    )
    for event in merge_event_streams(*streams):
        system.apply_event(event)
    return system.read()


def simulate_fail_probability(
    arrangement: str,
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
    scrub_period: float | None = None,
    scrub_exponential: bool = False,
    pattern: PatternLike = None,
    schedule: ScheduleLike = None,
) -> FailureEstimate:
    """Monte-Carlo failure probability through the real codec and arbiter."""
    if rng is None:
        rng = np.random.default_rng()
    # Parse specs once; per-trial calls then skip re-validation.
    pattern = None if pattern is None else parse_pattern(pattern)
    schedule = parse_schedule(schedule)
    counts = {outcome.value: 0 for outcome in ReadOutcome}
    failures = 0
    for _ in range(trials):
        outcome = simulate_read_outcome(
            arrangement,
            code,
            t_end,
            seu_per_bit,
            erasure_per_symbol,
            rng,
            scrub_period=scrub_period,
            scrub_exponential=scrub_exponential,
            pattern=pattern,
            schedule=schedule,
        )
        counts[outcome.value] += 1
        if outcome.is_failure:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(
        failures / trials, trials, failures, low, high, outcome_counts=counts
    )


# --------------------------------------------------------------------------
# batched / chunked fault injection through the batch codec
# --------------------------------------------------------------------------

SeedLike = Union[int, np.random.SeedSequence, None]


def spawn_chunk_seeds(
    seed: SeedLike, n_chunks: int
) -> List[np.random.SeedSequence]:
    """Independent per-chunk seed sequences from one root seed.

    Uses ``SeedSequence.spawn``, whose spawn-key mechanism guarantees the
    child streams are non-overlapping regardless of which process or in
    which order each chunk runs — this is the determinism backbone of the
    ``workers=N`` path.
    """
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(n_chunks)


def chunk_sizes(trials: int, chunk_size: int) -> List[int]:
    """Split ``trials`` into fixed-size chunks (last one may be short)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    full, rest = divmod(trials, chunk_size)
    return [chunk_size] * full + ([rest] if rest else [])


def _cached_batch_codec(
    n: int, k: int, m: int, fcr: int, backend: str = "numpy"
) -> BatchRSCodec:
    # One codec per (n, k, m, fcr, backend) per process; worker processes
    # rebuild their own copy on first use (tables come from the
    # lru-cached field, plane codegen from the gf_tables cache).
    key = (n, k, m, fcr, backend)
    codec = _CODEC_CACHE.get(key)
    if codec is None:
        codec = _CODEC_CACHE[key] = create_backend(backend, n, k, m=m, fcr=fcr)
    return codec


_CODEC_CACHE: Dict[Tuple[int, int, int, int, str], BatchRSCodec] = {}


def _draw_event_table(
    rng: np.random.Generator,
    rate_total: float,
    t_end: float,
    n_trials: int,
    n_symbols: int,
    m: int,
    with_values: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Vectorized Poisson event draw for a whole chunk of trials.

    Returns ``(counts, times, symbols, bits, values, offsets)`` where the
    flat arrays hold the events of every trial back to back and
    ``offsets`` are the per-trial split points (``cumsum`` of counts).
    Distribution-identical to running :func:`sample_seu_events` /
    :func:`sample_permanent_events` once per trial.
    """
    if rate_total <= 0 or t_end <= 0:
        zeros = np.zeros(n_trials, dtype=np.int64)
        empty = np.zeros(0)
        return zeros, empty, empty, empty, (empty if with_values else None), zeros
    counts = rng.poisson(rate_total * t_end, size=n_trials)
    total = int(counts.sum())
    times = rng.uniform(0.0, t_end, size=total)
    symbols = rng.integers(0, n_symbols, size=total)
    bits = rng.integers(0, m, size=total)
    values = rng.integers(0, 2, size=total) if with_values else None
    return counts, times, symbols, bits, values, np.cumsum(counts)


def _trial_events(
    trial: int,
    kind: FaultKind,
    module: int,
    table,
) -> List[FaultEvent]:
    """Materialize one trial's slice of a flat event table."""
    counts, times, symbols, bits, values, offsets = table
    if counts[trial] == 0:
        return []
    hi = offsets[trial]
    lo = hi - counts[trial]
    if values is None:
        return [
            FaultEvent(float(times[i]), kind, module, int(symbols[i]), int(bits[i]))
            for i in range(lo, hi)
        ]
    return [
        FaultEvent(
            float(times[i]),
            kind,
            module,
            int(symbols[i]),
            int(bits[i]),
            int(values[i]),
        )
        for i in range(lo, hi)
    ]


def _draw_scrub_times(
    rng: np.random.Generator,
    t_end: float,
    period: Optional[float],
    exponential: bool,
    n_trials: int,
) -> List[np.ndarray]:
    """Per-trial scrub instants, matching :func:`scrub_schedule` in law.

    The exponential schedule is a Poisson process of rate ``1/period``;
    drawing ``Poisson(t/period)`` counts and sorting uniform instants is
    the standard equivalent construction, vectorized over the chunk.
    """
    if period is None or period <= 0 or t_end <= 0:
        return [np.zeros(0)] * n_trials
    if not exponential:
        ticks = np.arange(1, int(t_end / period) + 1) * period
        return [ticks] * n_trials
    counts = rng.poisson(t_end / period, size=n_trials)
    flat = rng.uniform(0.0, t_end, size=int(counts.sum()))
    out: List[np.ndarray] = []
    offset = 0
    for c in counts:
        out.append(np.sort(flat[offset : offset + int(c)]))
        offset += int(c)
    return out


def _run_injection_chunk(args: tuple) -> Dict[str, object]:
    """Execute one chunk of trials; picklable, runs in worker processes.

    Strategy: draw everything vectorized, skip trials with zero fault
    events outright (their read is trivially ``CORRECT``), replay the few
    dirty trials' event streams through the real bit-level systems, then
    push *all* final reads through one ``decode_batch`` call and apply
    the scalar classification/arbitration rules to the per-word results.

    When a correlated ``pattern_spec``/``schedule_spec`` is set the
    transient process is the compound-Poisson mixture of
    :mod:`repro.simulator.patterns`: arrival *counts* are still drawn
    vectorized per chunk, but every fault-bearing trial takes the replay
    path (mask events and in-arrival permanents are stateful), keeping
    the fast zero-event shortcut for the clean majority.
    """
    (
        arrangement,
        n,
        k,
        m,
        fcr,
        t_end,
        seu_per_bit,
        erasure_per_symbol,
        scrub_period,
        scrub_exponential,
        n_trials,
        seed_seq,
        pattern_spec,
        schedule_spec,
        *rest,
    ) = args
    # The backend rides at the end of the args tuple so pre-registry
    # 14-tuples (journals, tests, lease boards) stay replayable.
    backend = rest[0] if rest else "numpy"
    codec = _cached_batch_codec(n, k, m, fcr, backend)
    code = codec.scalar
    counters = PerfCounters()
    codec.counters = counters
    # Busy time goes to the additive cpu_seconds axis; true wall clock
    # (elapsed_seconds) is owned by the coordinator's Stopwatch.
    t_busy = time.perf_counter()
    try:
        rng = np.random.default_rng(seed_seq)
        n_modules = 2 if arrangement == "duplex" else 1
        if arrangement not in ("simplex", "duplex"):
            raise ValueError(f"unknown arrangement {arrangement!r}")

        data = rng.integers(0, code.gf.order, size=(n_trials, k))
        codewords = codec.encode_batch(data)

        use_patterns = pattern_spec is not None or schedule_spec is not None
        if use_patterns:
            pat = (
                parse_pattern(pattern_spec)
                if pattern_spec is not None
                else IID_1BIT
            )
            sched = parse_schedule(schedule_spec)
            expected = seu_per_bit * n * m * (
                sched.integral(t_end) if sched is not None else t_end
            )
            seu_tables: Optional[List[tuple]] = None
            seu_counts = np.zeros(n_trials, dtype=np.int64)
            # Per module: {trial -> expanded events}; counts drawn
            # vectorized, expansion done per dirty trial in trial order
            # so the stream is a pure function of the chunk seed.
            pattern_trial_events: List[Dict[int, List[FaultEvent]]] = []
            for module in range(n_modules):
                mod_counts = (
                    rng.poisson(expected, size=n_trials)
                    if expected > 0
                    else np.zeros(n_trials, dtype=np.int64)
                )
                per_trial: Dict[int, List[FaultEvent]] = {}
                for trial in np.flatnonzero(mod_counts):
                    arrivals = int(mod_counts[trial])
                    if sched is not None:
                        times = sched.sample_times(rng, t_end, arrivals)
                    else:
                        times = np.sort(
                            rng.uniform(0.0, t_end, size=arrivals)
                        )
                    per_trial[int(trial)] = expand_arrivals(
                        rng, pat, times, n, m, module
                    )
                seu_counts = seu_counts + mod_counts.astype(np.int64)
                pattern_trial_events.append(per_trial)
        else:
            seu_tables = [
                _draw_event_table(
                    rng, seu_per_bit * n * m, t_end, n_trials, n, m, False
                )
                for _ in range(n_modules)
            ]
        perm_tables = [
            _draw_event_table(
                rng, erasure_per_symbol * n, t_end, n_trials, n, m, True
            )
            for _ in range(n_modules)
        ]
        scrub_times = _draw_scrub_times(
            rng, t_end, scrub_period, scrub_exponential, n_trials
        )

        counts = {outcome.value: 0 for outcome in ReadOutcome}
        # Trials with no fault events at all read back CORRECT by
        # construction (scrubs are no-ops on fault-free words): count them
        # without touching the codec.
        if not use_patterns:
            seu_counts = sum(t[0] for t in seu_tables)
        perm_counts = sum(t[0] for t in perm_tables)
        fault_counts = seu_counts + perm_counts
        scrubless = np.asarray(
            [len(times) == 0 for times in scrub_times], dtype=bool
        )
        dirty = fault_counts > 0
        counts[ReadOutcome.CORRECT.value] += int(n_trials - dirty.sum())

        # SEU-only trials with no scrubs need no event replay: with no
        # stuck cells and no rewrites, flips commute, so the final stored
        # word is just the codeword XOR the scatter of all flip masks.
        # Pattern events are excluded: mask strikes and in-arrival
        # permanents are stateful, so every pattern-dirty trial replays.
        if use_patterns:
            vector_mask = np.zeros(n_trials, dtype=bool)
        else:
            vector_mask = dirty & (perm_counts == 0) & scrubless
        vec_trials = np.flatnonzero(vector_mask)
        replay_trials = np.flatnonzero(dirty & ~vector_mask)

        # Per-trial ground truth / erasures / decode inputs, accumulated
        # across both paths, decoded in one batch at the end.  Each entry
        # of *_meta describes one trial: (truth row index, masked, shared).
        pending_words: List[Sequence[int]] = []
        pending_erasures: List[List[int]] = []
        trial_meta: List[Tuple[int, int, int]] = []

        if vec_trials.size:
            compact = np.full(n_trials, -1, dtype=np.int64)
            compact[vec_trials] = np.arange(vec_trials.size)
            received_per_module = []
            for module in range(n_modules):
                mod_counts, _times, symbols, bits, _values, _off = seu_tables[
                    module
                ]
                ev_trial = np.repeat(np.arange(n_trials), mod_counts)
                ev_mask = vector_mask[ev_trial]
                rec = codewords[vec_trials].copy()
                np.bitwise_xor.at(
                    rec,
                    (compact[ev_trial[ev_mask]], symbols[ev_mask]),
                    np.int64(1) << bits[ev_mask].astype(np.int64),
                )
                received_per_module.append(rec)
            for row, trial in enumerate(vec_trials):
                for module in range(n_modules):
                    pending_words.append(received_per_module[module][row])
                    pending_erasures.append([])
                trial_meta.append((int(trial), 0, 0))

        # Replay the remaining dirty trials (permanent faults and/or
        # scrubs: stateful, order-dependent) through the bit-level
        # systems, still deferring the final read's decode to the batch.
        for trial in replay_trials:
            events: List[FaultEvent] = []
            for module in range(n_modules):
                if use_patterns:
                    events += pattern_trial_events[module].get(int(trial), [])
                else:
                    events += _trial_events(
                        trial, FaultKind.SEU, module, seu_tables[module]
                    )
                events += _trial_events(
                    trial, FaultKind.PERMANENT, module, perm_tables[module]
                )
            events += [
                FaultEvent(float(t), FaultKind.SCRUB) for t in scrub_times[trial]
            ]
            events.sort(key=event_sort_key)
            codeword = codewords[trial].tolist()
            if arrangement == "simplex":
                system: SimplexSystem | DuplexSystem = SimplexSystem(
                    code, codeword=codeword
                )
            else:
                system = DuplexSystem(code, codeword=codeword)
            for event in events:
                system.apply_event(event)
            if arrangement == "simplex":
                pending_words.append(system.word.read())
                pending_erasures.append(system.word.located_positions)
                trial_meta.append((int(trial), 0, 0))
            else:
                s1, s2, shared, masked = recover_erasures(
                    system.modules[0], system.modules[1]
                )
                pending_words.append(s1)
                pending_words.append(s2)
                pending_erasures.append(shared)
                pending_erasures.append(shared)
                trial_meta.append((int(trial), masked, len(shared)))

        if pending_words:
            report = codec.decode_batch(
                np.asarray(pending_words, dtype=np.int64), pending_erasures
            )
            truth_rows = data.tolist()
            for slot, (trial, masked, shared) in enumerate(trial_meta):
                truth = truth_rows[trial]
                if arrangement == "simplex":
                    r = report.results[slot]
                    if isinstance(r, RSDecodingError):
                        outcome = ReadOutcome.UNREADABLE
                    elif r.data == truth:
                        outcome = ReadOutcome.CORRECT
                    else:
                        outcome = ReadOutcome.CORRUPTED
                else:
                    r1 = report.results[2 * slot]
                    r2 = report.results[2 * slot + 1]
                    result = decide_from_decodes(
                        None if isinstance(r1, RSDecodingError) else r1,
                        None if isinstance(r2, RSDecodingError) else r2,
                        masked=masked,
                        shared=shared,
                    )
                    if not result.produced_output:
                        outcome = ReadOutcome.UNREADABLE
                    elif result.data == truth:
                        outcome = ReadOutcome.CORRECT
                    else:
                        outcome = ReadOutcome.CORRUPTED
                counts[outcome.value] += 1

        failures = sum(
            counts[o.value] for o in ReadOutcome if o.is_failure
        )
        counters.trials += n_trials
        counters.chunks += 1
        counters.cpu_seconds += time.perf_counter() - t_busy
        return {
            "failures": failures,
            "counts": counts,
            "trials": n_trials,
            "counters": counters.as_dict(),
        }
    finally:
        codec.counters = None


def _run_scalar_chunk(args: tuple) -> Dict[str, object]:
    """Scalar (one-trial-at-a-time) executor for one chunk; the fallback.

    Takes the same args tuple as :func:`_run_injection_chunk` and
    produces the same result payload, but runs every trial through the
    trusted :func:`simulate_read_outcome` reference path.  The chunk's
    spawned ``SeedSequence`` seeds the generator, so the fallback is
    deterministic; it consumes the stream in a different *order* than
    the batch executor, so a degraded chunk is distribution-identical
    (same physics, same seed independence) but not stream-identical to
    its batch counterpart.
    """
    (
        arrangement,
        n,
        k,
        m,
        fcr,
        t_end,
        seu_per_bit,
        erasure_per_symbol,
        scrub_period,
        scrub_exponential,
        n_trials,
        seed_seq,
        pattern_spec,
        schedule_spec,
        *_rest,  # backend hint; irrelevant to the scalar reference path
    ) = args
    code = _cached_batch_codec(n, k, m, fcr).scalar
    t_busy = time.perf_counter()
    rng = np.random.default_rng(seed_seq)
    pattern = None if pattern_spec is None else parse_pattern(pattern_spec)
    schedule = parse_schedule(schedule_spec)
    counts = {outcome.value: 0 for outcome in ReadOutcome}
    failures = 0
    for _ in range(n_trials):
        outcome = simulate_read_outcome(
            arrangement,
            code,
            t_end,
            seu_per_bit,
            erasure_per_symbol,
            rng,
            scrub_period=scrub_period,
            scrub_exponential=scrub_exponential,
            pattern=pattern,
            schedule=schedule,
        )
        counts[outcome.value] += 1
        if outcome.is_failure:
            failures += 1
    counters = PerfCounters(
        trials=n_trials, chunks=1, cpu_seconds=time.perf_counter() - t_busy
    )
    return {
        "failures": failures,
        "counts": counts,
        "trials": n_trials,
        "counters": counters.as_dict(),
    }


def _publish_ber_snapshot(snapshot: BerSnapshot, cell_key: str) -> None:
    """Mirror an incremental BER±CI snapshot into the obs layer.

    Gauges carry the latest aggregate (last-value semantics match a
    streaming estimate); the trace event stream keeps the full history
    for post-hoc convergence plots.
    """
    registry = obs_metrics.get_registry()
    registry.gauge("repro.mc.ber").set(snapshot.probability)
    registry.gauge("repro.mc.ber_ci_low").set(snapshot.ci_low)
    registry.gauge("repro.mc.ber_ci_high").set(snapshot.ci_high)
    if not math.isinf(snapshot.rel_halfwidth):
        registry.gauge("repro.mc.ber_rel_halfwidth").set(snapshot.rel_halfwidth)
    trace.event("ber_snapshot", cell=cell_key, **snapshot.as_dict())


def simulate_fail_probability_batched(
    arrangement: str,
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    trials: int,
    seed: SeedLike = 0,
    scrub_period: float | None = None,
    scrub_exponential: bool = False,
    chunk_size: int = 512,
    workers: int = 1,
    counters: Optional[PerfCounters] = None,
    runtime: Optional[RuntimeConfig] = None,
    cell_key: str = "0",
    pattern: PatternLike = None,
    schedule: ScheduleLike = None,
    backend: str = "numpy",
) -> FailureEstimate:
    """Batched Monte-Carlo failure probability through the batch codec.

    Same physics as :func:`simulate_fail_probability`, executed in
    vectorized chunks (see :func:`_run_injection_chunk`).  The estimate
    is a deterministic function of ``(seed, trials, chunk_size)`` and all
    physical parameters — and of nothing else.  In particular,
    ``backend`` selects which registered RS engine
    (:mod:`repro.rs.backends`: ``scalar`` / ``numpy`` / ``compiled``)
    executes the encode/syndrome kernels; all backends are bit-identical,
    so it is a pure execution hint like ``workers``:

    * each chunk draws from its own spawned :class:`numpy.random.SeedSequence`
      (:func:`spawn_chunk_seeds`), so streams never overlap;
    * chunk results are combined by commutative summation, so scheduling
      order and ``workers`` cannot change the outcome.

    ``workers > 1`` distributes chunks over a supervised process pool
    (:class:`~repro.runtime.ChunkSupervisor`): crashed or hung workers
    are detected, failed chunks retried with bounded backoff, and
    persistently failing chunks degraded to the scalar reference
    executor so the run always completes.  ``counters`` (optional)
    receives the merged work/throughput/resilience counters of all
    chunks, wherever they ran.

    ``runtime`` bundles the resilience options (retry policy, per-chunk
    timeout, chaos injection, checkpoint journal); ``cell_key``
    namespaces this call's chunks inside a shared journal.  Journaled
    chunks are replayed instead of recomputed, which — by the
    commutative-sum property above — makes an interrupted-and-resumed
    run bit-identical to an uninterrupted one.

    ``runtime.executor`` selects the dispatch backend (serial, pool, or
    the journal-adjacent lease board) and ``runtime.straggler`` enables
    speculative re-dispatch — neither can affect the estimate.  Every
    completion streams an incremental BER±CI snapshot into the obs
    layer (and ``runtime.on_snapshot``); ``runtime.stop`` adds the
    adaptive stopping rule: the run ends at the smallest contiguous
    chunk prefix whose cumulative interval satisfies the rule, and the
    estimate aggregates exactly that prefix — so early-stopped results
    are also invariant to executor, worker count, and schedule
    (``stopped_early`` marks them, with ``trials`` reduced to the
    prefix).
    """
    if arrangement not in ("simplex", "duplex"):
        raise ValueError(f"unknown arrangement {arrangement!r}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # Fail before any work is dispatched (and loudly: an unavailable
    # compiled backend raises BackendUnavailableError here, it never
    # silently substitutes another engine).
    _cached_batch_codec(code.n, code.k, code.m, code.fcr, backend)
    # Canonicalize pattern/schedule to their spec strings: validated
    # here (ValueError on malformed input, before any work is spawned)
    # and picklable for the worker-process path.
    pattern_spec = (
        None if pattern is None else format_pattern(parse_pattern(pattern))
    )
    parsed_schedule = parse_schedule(schedule)
    schedule_spec = (
        None if parsed_schedule is None else format_schedule(parsed_schedule)
    )
    sizes = chunk_sizes(trials, chunk_size)
    seeds = spawn_chunk_seeds(seed, len(sizes))
    job_args = [
        (
            arrangement,
            code.n,
            code.k,
            code.m,
            code.fcr,
            t_end,
            seu_per_bit,
            erasure_per_symbol,
            scrub_period,
            scrub_exponential,
            size,
            chunk_seed,
            pattern_spec,
            schedule_spec,
            backend,
        )
        for size, chunk_seed in zip(sizes, seeds)
    ]

    cfg = runtime if runtime is not None else RuntimeConfig()
    journal = cfg.journal
    own_counters = counters if counters is not None else PerfCounters()
    seed_ids = [seed_key(s) for s in seeds]

    # Streaming aggregation: every completion (journal replays included)
    # folds into an incremental BER±CI snapshot for the obs layer, and —
    # when a stopping rule is configured — into the contiguous-prefix
    # stopper whose decision is invariant to scheduling.
    ci_method = cfg.stop.method if cfg.stop is not None else "wilson"
    ci_confidence = cfg.stop.confidence if cfg.stop is not None else 0.95
    streamer = StreamingEstimator(method=ci_method, confidence=ci_confidence)
    stopper = AdaptiveStopper(cfg.stop) if cfg.stop is not None else None

    def observe(index: int, result: Dict[str, object]) -> None:
        chunk_failures = int(result["failures"])  # type: ignore[arg-type]
        chunk_trials = int(result["trials"])  # type: ignore[arg-type]
        snapshot = streamer.offer(index, chunk_failures, chunk_trials)
        if snapshot is not None:
            _publish_ber_snapshot(snapshot, cell_key)
            if cfg.on_snapshot is not None:
                cfg.on_snapshot(snapshot)
        if stopper is not None:
            stopper.offer(index, chunk_failures, chunk_trials)

    results: Dict[int, Dict[str, object]] = {}
    jobs: List[Tuple[int, tuple]] = []
    for index, args in enumerate(job_args):
        cached = (
            journal.completed(cell_key, index, seed_ids[index])
            if journal is not None
            else None
        )
        if cached is not None:
            results[index] = cached
            own_counters.chunks_resumed += 1
            observe(index, cached)
            # Replayed chunks are finished work too: advance the
            # progress estimate and leave a heartbeat in the trace.
            resumed_trials = int(cached.get("trials", 0))  # type: ignore[union-attr]
            heartbeat_attrs = {
                "chunk": index,
                "trials": resumed_trials,
                "resumed": True,
            }
            if cfg.progress is not None:
                progress_event = cfg.progress.advance(max(resumed_trials, 1))
                heartbeat_attrs.update(progress_event.as_dict())
                if cfg.on_progress is not None:
                    cfg.on_progress(progress_event)
            trace.event("chunk_heartbeat", **heartbeat_attrs)
        else:
            jobs.append((index, args))
    if stopper is not None and stopper.should_stop:
        # Resumed chunks alone satisfied the rule on a complete prefix;
        # everything past the stop index is unnecessary work.
        jobs = []

    with trace.span(
        "simulate_fail_probability_batched",
        arrangement=arrangement,
        trials=trials,
        chunk_size=chunk_size,
        workers=workers,
        engine=backend,
        n_chunks=len(sizes),
        chunks_resumed=len(results),
        cell_key=cell_key,
    ), Stopwatch(own_counters):
        if jobs:
            board_dir = cfg.board_dir
            if board_dir is None and journal is not None and (
                cfg.executor in ("lease", "fleet")
            ):
                board_dir = Path(str(journal.path) + ".board")
            # An explicit board means external `repro worker` agents do
            # the computing; without one the fleet spawns local agents.
            fleet_spawn = (
                0
                if (cfg.executor == "fleet" and cfg.board_dir is not None)
                else None
            )
            supervisor = ChunkSupervisor(
                workers=workers,
                retry=cfg.retry,
                chunk_timeout=cfg.chunk_timeout,
                chaos=cfg.chaos,
                counters=own_counters,
                progress=cfg.progress,
                on_progress=cfg.on_progress,
                executor=cfg.executor,
                straggler=cfg.straggler,
                board_dir=board_dir,
                worker_ttl=cfg.worker_ttl,
                fleet_spawn=fleet_spawn,
            )

            def record(index: int, result: Dict[str, object]) -> None:
                if journal is not None:
                    journal.record_chunk(cell_key, index, seed_ids[index], result)
                observe(index, result)

            results.update(
                supervisor.run(
                    jobs,
                    primary=_run_injection_chunk,
                    fallback=_run_scalar_chunk,
                    on_complete=record,
                    should_stop=(
                        None
                        if stopper is None
                        else lambda: stopper.should_stop
                    ),
                )
            )
            cfg.events.extend(supervisor.events)

    stop_index = stopper.stop_index if stopper is not None else None
    if stop_index is not None:
        # The estimate uses exactly the contiguous prefix 0..stop_index —
        # a pure function of the chunk results, so it is identical for
        # any executor, worker count, or completion schedule.  Chunks
        # that completed opportunistically past the stop index are
        # discarded (their journal records stay valid for a full run).
        used_indices = [i for i in sorted(results) if i <= stop_index]
        if len(used_indices) != stop_index + 1:
            raise RuntimeError(
                f"internal error: stopped prefix incomplete "
                f"({len(used_indices)} of {stop_index + 1} chunks present)"
            )
        trials_used = sum(sizes[i] for i in used_indices)
    else:
        used_indices = sorted(results)
        trials_used = trials
    counts: Dict[str, int] = {outcome.value: 0 for outcome in ReadOutcome}
    failures = 0
    for index in used_indices:
        res = results[index]
        failures += res["failures"]
        for key, value in res["counts"].items():
            counts[key] += value
        own_counters.merge(
            PerfCounters.from_dict(res["counters"])  # type: ignore[arg-type]
        )
    low, high = wilson_interval(failures, trials_used)
    # Robustness accounting: split the failure mass into *detected*
    # (decoder/arbiter refused output) vs *silent* (wrong data served) —
    # the axis on which out-of-model correlated faults differ from the
    # i.i.d. analytic picture.
    corrupted = counts[ReadOutcome.CORRUPTED.value]
    unreadable = counts[ReadOutcome.UNREADABLE.value]
    registry = obs_metrics.get_registry()
    registry.counter("repro.mc.silent_miscorrections").inc(corrupted)
    registry.counter("repro.mc.detected_uncorrectable").inc(unreadable)
    trace.event(
        "robustness_counts",
        cell=cell_key,
        silent_miscorrections=corrupted,
        detected_uncorrectable=unreadable,
        trials=trials_used,
    )
    return FailureEstimate(
        failures / trials_used,
        trials_used,
        failures,
        low,
        high,
        outcome_counts=counts,
        stopped_early=trials_used < trials,
    )


MonteCarloRunner = Callable[..., FailureEstimate]
