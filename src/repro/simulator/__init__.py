"""Bit-level fault-injection simulator — the "physical" validation substrate.

Public surface:

* :class:`~repro.simulator.word.MemoryWord` — bit-level storage with SEU
  and stuck-at faults.
* :mod:`~repro.simulator.faults` — Poisson event streams and scrub
  schedules.
* :class:`~repro.simulator.systems.SimplexSystem` /
  :class:`~repro.simulator.systems.DuplexSystem` — executable arrangements
  using the real codec and arbiter.
* :func:`~repro.simulator.arbiter.arbitrate` — the Section 3 decision
  procedure.
* :mod:`~repro.simulator.montecarlo` — SSA and fault-injection estimators.
"""

from .arbiter import (
    ArbiterDecision,
    ArbiterResult,
    arbitrate,
    decide_from_decodes,
    recover_erasures,
)
from .campaign import (
    CampaignCell,
    CampaignRow,
    campaign_fingerprint,
    campaign_summary,
    default_validation_campaign,
    run_campaign,
)
from .controller import ControllerStats, simulate_controller
from .faults import (
    FaultEvent,
    FaultKind,
    merge_event_streams,
    sample_permanent_events,
    sample_seu_events,
    scrub_schedule,
)
from .mbu import sample_mbu_strikes, simulate_mbu_read_unreliability
from .montecarlo import (
    FailureEstimate,
    chunk_sizes,
    gillespie_fail_probability,
    simulate_fail_probability,
    simulate_fail_probability_batched,
    simulate_read_outcome,
    spawn_chunk_seeds,
    wilson_interval,
)
from .policies import ARBITER_POLICIES, compare_policies
from .systems import DuplexSystem, ReadOutcome, SimplexSystem
from .voting import NMRSystem, simulate_nmr_read_unreliability
from .word import MemoryWord

__all__ = [
    "MemoryWord",
    "FaultEvent",
    "FaultKind",
    "sample_seu_events",
    "sample_permanent_events",
    "scrub_schedule",
    "merge_event_streams",
    "ArbiterDecision",
    "ArbiterResult",
    "arbitrate",
    "recover_erasures",
    "SimplexSystem",
    "DuplexSystem",
    "ReadOutcome",
    "FailureEstimate",
    "gillespie_fail_probability",
    "simulate_fail_probability",
    "simulate_fail_probability_batched",
    "simulate_read_outcome",
    "spawn_chunk_seeds",
    "chunk_sizes",
    "decide_from_decodes",
    "wilson_interval",
    "NMRSystem",
    "simulate_nmr_read_unreliability",
    "sample_mbu_strikes",
    "simulate_mbu_read_unreliability",
    "ControllerStats",
    "simulate_controller",
    "ARBITER_POLICIES",
    "compare_policies",
    "CampaignCell",
    "CampaignRow",
    "campaign_fingerprint",
    "run_campaign",
    "default_validation_campaign",
    "campaign_summary",
]
