"""Bit-level fault-injection simulator — the "physical" validation substrate.

Public surface:

* :class:`~repro.simulator.word.MemoryWord` — bit-level storage with SEU
  and stuck-at faults.
* :mod:`~repro.simulator.faults` — Poisson event streams and scrub
  schedules.
* :class:`~repro.simulator.systems.SimplexSystem` /
  :class:`~repro.simulator.systems.DuplexSystem` — executable arrangements
  using the real codec and arbiter.
* :func:`~repro.simulator.arbiter.arbitrate` — the Section 3 decision
  procedure.
* :mod:`~repro.simulator.montecarlo` — SSA and fault-injection estimators.
* :mod:`~repro.simulator.patterns` — correlated fault-pattern grammar
  and time-varying rate schedules.
* :mod:`~repro.simulator.scenarios` — named, seeded campaign presets.
"""

from .arbiter import (
    ArbiterDecision,
    ArbiterResult,
    arbitrate,
    decide_from_decodes,
    recover_erasures,
)
from .campaign import (
    FINGERPRINT_SCHEMA,
    CampaignCell,
    CampaignRow,
    campaign_fingerprint,
    campaign_summary,
    canonical_fingerprint_json,
    cell_model_probability,
    default_validation_campaign,
    fingerprint_digest,
    run_campaign,
    stopping_fingerprint,
    upgrade_fingerprint,
)
from .controller import ControllerStats, simulate_controller
from .faults import (
    FaultEvent,
    FaultKind,
    event_sort_key,
    merge_event_streams,
    sample_permanent_events,
    sample_seu_events,
    scrub_schedule,
    sort_events,
)
from .mbu import sample_mbu_strikes, simulate_mbu_read_unreliability
from .montecarlo import (
    FailureEstimate,
    chunk_sizes,
    gillespie_fail_probability,
    simulate_fail_probability,
    simulate_fail_probability_batched,
    simulate_read_outcome,
    spawn_chunk_seeds,
    wilson_interval,
)
from .patterns import (
    IID_1BIT,
    FaultPattern,
    PatternKind,
    PatternTerm,
    RateSchedule,
    format_pattern,
    format_schedule,
    parse_pattern,
    parse_schedule,
    sample_pattern_events,
)
from .policies import ARBITER_POLICIES, compare_policies
from .scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    render_catalog,
    scenario_names,
)
from .systems import DuplexSystem, ReadOutcome, SimplexSystem
from .voting import NMRSystem, simulate_nmr_read_unreliability
from .word import MemoryWord

__all__ = [
    "MemoryWord",
    "FaultEvent",
    "FaultKind",
    "event_sort_key",
    "sort_events",
    "sample_seu_events",
    "sample_permanent_events",
    "scrub_schedule",
    "merge_event_streams",
    "PatternKind",
    "PatternTerm",
    "FaultPattern",
    "RateSchedule",
    "IID_1BIT",
    "parse_pattern",
    "format_pattern",
    "parse_schedule",
    "format_schedule",
    "sample_pattern_events",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "render_catalog",
    "ArbiterDecision",
    "ArbiterResult",
    "arbitrate",
    "recover_erasures",
    "SimplexSystem",
    "DuplexSystem",
    "ReadOutcome",
    "FailureEstimate",
    "gillespie_fail_probability",
    "simulate_fail_probability",
    "simulate_fail_probability_batched",
    "simulate_read_outcome",
    "spawn_chunk_seeds",
    "chunk_sizes",
    "decide_from_decodes",
    "wilson_interval",
    "NMRSystem",
    "simulate_nmr_read_unreliability",
    "sample_mbu_strikes",
    "simulate_mbu_read_unreliability",
    "ControllerStats",
    "simulate_controller",
    "ARBITER_POLICIES",
    "compare_policies",
    "CampaignCell",
    "CampaignRow",
    "FINGERPRINT_SCHEMA",
    "campaign_fingerprint",
    "canonical_fingerprint_json",
    "fingerprint_digest",
    "stopping_fingerprint",
    "upgrade_fingerprint",
    "cell_model_probability",
    "run_campaign",
    "default_validation_campaign",
    "campaign_summary",
]
