"""Executable simplex and duplex memory systems.

These classes wire the bit-level storage model, the real RS codec and (for
duplex) the arbiter into systems that the fault-injection harness can
drive: inject events, scrub, read, and classify the outcome against the
ground-truth data.  They are the "physical" counterpart of the Markov
models — mis-corrections, benign stuck-ats and repeated SEUs all happen
here exactly as in hardware, which is what the model-vs-simulation
benchmarks quantify.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from ..rs import RSCode, RSDecodingError
from .arbiter import ArbiterResult, arbitrate
from .faults import FaultEvent, FaultKind
from .word import MemoryWord


class ReadOutcome(Enum):
    """Classification of a read against the ground-truth data.

    The paper's reliability definition counts *inability to produce a
    correct output* as failure, i.e. both ``CORRUPTED`` (silent wrong
    data, e.g. an undetected mis-correction) and ``UNREADABLE`` (detected
    uncorrectable word / arbiter refuses output).
    """

    CORRECT = "correct"
    CORRUPTED = "corrupted"
    UNREADABLE = "unreadable"

    @property
    def is_failure(self) -> bool:
        return self is not ReadOutcome.CORRECT


def _apply_fault(word: MemoryWord, event: FaultEvent) -> None:
    """Apply one SEU or permanent fault event (bit- or mask-addressed).

    Correlated pattern events (:mod:`repro.simulator.patterns`) carry a
    nonzero symbol-level ``mask`` upsetting several cells in one
    instant; classic single-cell events keep ``mask == 0``.
    """
    if event.kind is FaultKind.SEU:
        if event.mask:
            word.flip_mask(event.symbol, event.mask)
        else:
            word.flip_bit(event.symbol, event.bit)
    elif event.kind is FaultKind.PERMANENT:
        if event.mask:
            word.make_stuck_mask(event.symbol, event.mask, event.stuck_value)
        else:
            word.make_stuck(event.symbol, event.bit, event.stuck_value)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled event kind {event.kind}")


class SimplexSystem:
    """One RS(n, k)-coded memory word with scrubbing support."""

    def __init__(
        self,
        code: RSCode,
        data: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
        codeword: Optional[Sequence[int]] = None,
    ):
        self.code = code
        if data is None:
            if codeword is not None:
                data = code.extract_data(codeword)
            else:
                if rng is None:
                    rng = np.random.default_rng()
                data = [
                    int(v) for v in rng.integers(0, code.gf.order, size=code.k)
                ]
        self.data = list(data)
        if codeword is None:
            codeword = code.encode(self.data)
        self.word = MemoryWord(codeword, code.m)

    # -- event application -------------------------------------------------

    def apply_event(self, event: FaultEvent) -> None:
        """Apply one injected fault or a scrub operation."""
        if event.kind is FaultKind.SCRUB:
            self.scrub()
        else:
            _apply_fault(self.word, event)

    def scrub(self) -> bool:
        """Read-correct-writeback; returns False if the word was uncorrectable.

        A failed scrub leaves the stored contents untouched (the
        controller has nothing valid to write back); the accumulated
        damage then surfaces at the next read.
        """
        try:
            result = self.code.decode(
                self.word.read(), erasure_positions=self.word.located_positions
            )
        except RSDecodingError:
            return False
        self.word.write(result.codeword)
        return True

    def read(self) -> ReadOutcome:
        """Decode the stored word and compare with the ground truth."""
        try:
            result = self.code.decode(
                self.word.read(), erasure_positions=self.word.located_positions
            )
        except RSDecodingError:
            return ReadOutcome.UNREADABLE
        if result.data == self.data:
            return ReadOutcome.CORRECT
        return ReadOutcome.CORRUPTED


class DuplexSystem:
    """Two replicated RS(n, k) modules behind the Section 3 arbiter."""

    def __init__(
        self,
        code: RSCode,
        data: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
        codeword: Optional[Sequence[int]] = None,
    ):
        self.code = code
        if data is None:
            if codeword is not None:
                data = code.extract_data(codeword)
            else:
                if rng is None:
                    rng = np.random.default_rng()
                data = [
                    int(v) for v in rng.integers(0, code.gf.order, size=code.k)
                ]
        self.data = list(data)
        if codeword is None:
            codeword = code.encode(self.data)
        self.modules: List[MemoryWord] = [
            MemoryWord(codeword, code.m),
            MemoryWord(codeword, code.m),
        ]

    def apply_event(self, event: FaultEvent) -> None:
        """Apply one injected fault (module-addressed) or a scrub."""
        if event.kind is FaultKind.SCRUB:
            self.scrub()
            return
        _apply_fault(self.modules[event.module], event)

    def arbitrate(self) -> ArbiterResult:
        """One pass of erasure recovery + decoding + comparison."""
        return arbitrate(self.code, self.modules[0], self.modules[1])

    def scrub(self) -> bool:
        """Arbiter-driven scrub: rewrite both modules with the output word.

        If the arbiter produces no output there is nothing trustworthy to
        write back; the scrub is skipped and returns False.
        """
        result = self.arbitrate()
        if not result.produced_output:
            return False
        codeword = self.code.encode(result.data)
        for module in self.modules:
            module.write(codeword)
        return True

    def read(self) -> ReadOutcome:
        """Arbiter read, classified against the ground truth."""
        result = self.arbitrate()
        if not result.produced_output:
            return ReadOutcome.UNREADABLE
        if result.data == self.data:
            return ReadOutcome.CORRECT
        return ReadOutcome.CORRUPTED
