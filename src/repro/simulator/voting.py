"""Executable N-modular-redundancy memory with a symbol voter.

The physical counterpart of :mod:`repro.memory.nmr`: N replicated
modules, a per-symbol voter over the non-erased replicas, and one RS
decode of the voted word.  Ties and fully-erased positions degrade
exactly as the analysis assumes — except that here two SEUs *can* forge
the same wrong symbol (the "masking error" the paper neglects), so the
Monte-Carlo estimates bound the closed form from both sides at high rate.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

import numpy as np

from ..rs import RSCode, RSDecodingError
from .faults import FaultEvent, FaultKind
from .systems import ReadOutcome
from .word import MemoryWord


class NMRSystem:
    """N replicated RS(n, k) modules behind a per-symbol majority voter."""

    def __init__(
        self,
        code: RSCode,
        num_modules: int,
        data: Optional[Sequence[int]] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if num_modules < 1:
            raise ValueError("need at least one module")
        self.code = code
        if data is None:
            if rng is None:
                rng = np.random.default_rng()
            data = [int(v) for v in rng.integers(0, code.gf.order, size=code.k)]
        self.data = list(data)
        codeword = code.encode(self.data)
        self.modules: List[MemoryWord] = [
            MemoryWord(codeword, code.m) for _ in range(num_modules)
        ]

    @property
    def num_modules(self) -> int:
        return len(self.modules)

    def apply_event(self, event: FaultEvent) -> None:
        """Apply one injected fault (module-addressed) or a scrub."""
        if event.kind is FaultKind.SCRUB:
            self.scrub()
            return
        module = self.modules[event.module]
        if event.kind is FaultKind.SEU:
            module.flip_bit(event.symbol, event.bit)
        elif event.kind is FaultKind.PERMANENT:
            module.make_stuck(event.symbol, event.bit, event.stuck_value)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unhandled event kind {event.kind}")

    def vote(self) -> tuple[List[int], List[int]]:
        """Per-symbol plurality over non-erased replicas.

        Returns the voted word and the positions where every replica was
        erased (passed to the decoder as erasures).  A tied plurality
        keeps whichever tied value sorts first — a wrong value on a real
        tie, which is the conservative reading the analysis uses.
        """
        n = self.code.n
        voted = [0] * n
        erasures: List[int] = []
        for pos in range(n):
            candidates = [
                module.read_symbol(pos)
                for module in self.modules
                if not module.is_erased(pos)
            ]
            if not candidates:
                erasures.append(pos)
                continue
            counts = Counter(candidates)
            top = max(counts.values())
            # deterministic tie-break: smallest symbol value among the tied
            voted[pos] = min(v for v, c in counts.items() if c == top)
        return voted, erasures

    def read(self) -> ReadOutcome:
        """Vote, decode, classify against the ground truth."""
        voted, erasures = self.vote()
        try:
            result = self.code.decode(voted, erasure_positions=erasures)
        except RSDecodingError:
            return ReadOutcome.UNREADABLE
        if result.data == self.data:
            return ReadOutcome.CORRECT
        return ReadOutcome.CORRUPTED

    def scrub(self) -> bool:
        """Vote + decode + rewrite every replica with the corrected word."""
        voted, erasures = self.vote()
        try:
            result = self.code.decode(voted, erasure_positions=erasures)
        except RSDecodingError:
            return False
        for module in self.modules:
            module.write(result.codeword)
        return True


def simulate_nmr_read_unreliability(
    code: RSCode,
    num_modules: int,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
):
    """Monte-Carlo read unreliability of the NMR arrangement at ``t_end``.

    Returns a :class:`~repro.simulator.montecarlo.FailureEstimate`; the
    quantity estimated is exactly what
    :func:`repro.memory.nmr.nmr_read_unreliability` computes in closed
    form.
    """
    from .faults import sample_permanent_events, sample_seu_events
    from .montecarlo import FailureEstimate, wilson_interval

    if rng is None:
        rng = np.random.default_rng()
    failures = 0
    for _ in range(trials):
        system = NMRSystem(code, num_modules, rng=rng)
        for module_idx in range(num_modules):
            for event in sample_seu_events(
                rng, seu_per_bit, code.n, code.m, t_end, module_idx
            ):
                system.apply_event(event)
            for event in sample_permanent_events(
                rng, erasure_per_symbol, code.n, code.m, t_end, module_idx
            ):
                system.apply_event(event)
        if system.read().is_failure:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(failures / trials, trials, failures, low, high)
