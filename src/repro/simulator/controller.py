"""Discrete-event model of a memory controller with scrub interference.

The analytic overhead model (:mod:`repro.memory.overhead`) assumes the
scrubber's duty cycle translates one-for-one into lost availability.
This DES checks that assumption with queueing in the picture: read
requests arrive as a Poisson stream, each occupying the controller for a
decode latency (:mod:`repro.rs.pipeline`), while a scrubber walks every
word once per period at lower priority (a scrub word-step yields to
pending reads but is non-preemptible once started).

Outputs: measured utilization split (reads / scrub / idle), read latency
statistics (mean and tail), and the effective availability — ready to
compare against the closed-form duty cycle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..rs.pipeline import decoder_timing


@dataclass(frozen=True)
class ControllerStats:
    """Aggregate results of one controller simulation."""

    simulated_seconds: float
    reads_served: int
    scrub_words_done: int
    read_busy_seconds: float
    scrub_busy_seconds: float
    mean_read_latency_s: float
    p99_read_latency_s: float
    utilization: float          # fraction of time busy (reads + scrub)
    scrub_duty: float           # fraction of time spent scrubbing
    availability: float         # 1 - scrub_duty (analytic comparison)


def simulate_controller(
    n: int,
    k: int,
    num_words: int,
    scrub_period_s: float,
    read_rate_per_s: float,
    sim_seconds: float,
    clock_hz: float = 50e6,
    rng: Optional[np.random.Generator] = None,
) -> ControllerStats:
    """Run the controller DES and return measured statistics.

    The scrubber spreads its pass uniformly over the period (one word
    every ``period / num_words`` seconds), the common "patrol scrub"
    policy; each word-step and each read costs one decode latency.
    """
    if num_words <= 0:
        raise ValueError("num_words must be positive")
    if scrub_period_s <= 0:
        raise ValueError("scrub period must be positive")
    if sim_seconds <= 0:
        raise ValueError("sim_seconds must be positive")
    if read_rate_per_s < 0:
        raise ValueError("read rate must be nonnegative")
    if rng is None:
        rng = np.random.default_rng()

    service_s = decoder_timing(n, k).latency_cycles / clock_hz
    scrub_step_s = scrub_period_s / num_words

    # event queue: (time, seq, kind) with kind in {"read", "scrub"}
    events: List[tuple[float, int, str]] = []
    seq = 0

    def push(t: float, kind: str) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, kind))
        seq += 1

    if read_rate_per_s > 0:
        push(float(rng.exponential(1.0 / read_rate_per_s)), "read")
    push(scrub_step_s, "scrub")

    controller_free_at = 0.0
    read_busy = 0.0
    scrub_busy = 0.0
    latencies: List[float] = []
    reads_served = 0
    scrub_done = 0

    while events:
        t, _s, kind = heapq.heappop(events)
        if t >= sim_seconds:
            break
        start = max(t, controller_free_at)
        if start + service_s > sim_seconds:
            # would finish past the horizon; stop scheduling work
            if kind == "read" and read_rate_per_s > 0:
                pass
            continue
        controller_free_at = start + service_s
        if kind == "read":
            reads_served += 1
            read_busy += service_s
            latencies.append(controller_free_at - t)
            push(t + float(rng.exponential(1.0 / read_rate_per_s)), "read")
        else:
            scrub_done += 1
            scrub_busy += service_s
            push(t + scrub_step_s, "scrub")

    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    utilization = (read_busy + scrub_busy) / sim_seconds
    scrub_duty = scrub_busy / sim_seconds
    return ControllerStats(
        simulated_seconds=sim_seconds,
        reads_served=reads_served,
        scrub_words_done=scrub_done,
        read_busy_seconds=read_busy,
        scrub_busy_seconds=scrub_busy,
        mean_read_latency_s=float(lat.mean()),
        p99_read_latency_s=float(np.percentile(lat, 99)),
        utilization=utilization,
        scrub_duty=scrub_duty,
        availability=1.0 - scrub_duty,
    )
