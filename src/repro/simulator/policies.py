"""Alternative duplex arbiter policies (ablation of paper Section 3).

The paper's arbiter uses per-word correction *flags* to discriminate
mis-corrections.  How much is that machinery worth?  This module
implements the obvious cheaper policies on the same erasure-recovered
words so the fault-injection harness can compare failure rates:

* ``flag_compare`` — the paper's full procedure (delegates to
  :func:`repro.simulator.arbiter.arbitrate`);
* ``first_decodable`` — output module 1's decode if it succeeds, else
  module 2's (no comparison, no flags): cheapest hardware, blind to
  mis-corrections;
* ``compare_no_flags`` — decode both and compare; equal words are
  output, different words are a detected failure (no flags to break the
  tie): never silently wrong between the two words, but gives up on
  every single-sided mis-correction the flags would have resolved;
* ``module1_only`` — ignore the replica entirely on reads (it only backs
  erasure recovery): the degenerate baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..rs import RSCode, RSDecodingError
from .arbiter import recover_erasures
from .word import MemoryWord

PolicyResult = Tuple[Optional[List[int]], str]
Policy = Callable[[RSCode, MemoryWord, MemoryWord], PolicyResult]


def _decode_both(code: RSCode, word1: MemoryWord, word2: MemoryWord):
    s1, s2, shared, _masked = recover_erasures(word1, word2)

    def attempt(symbols):
        try:
            return code.decode(symbols, erasure_positions=shared)
        except RSDecodingError:
            return None

    return attempt(s1), attempt(s2)


def policy_flag_compare(
    code: RSCode, word1: MemoryWord, word2: MemoryWord
) -> PolicyResult:
    """The paper's Section 3 procedure."""
    from .arbiter import arbitrate

    result = arbitrate(code, word1, word2)
    return result.data, result.decision.value


def policy_first_decodable(
    code: RSCode, word1: MemoryWord, word2: MemoryWord
) -> PolicyResult:
    """Take whichever module decodes first; never compare."""
    r1, r2 = _decode_both(code, word1, word2)
    if r1 is not None:
        return r1.data, "module1"
    if r2 is not None:
        return r2.data, "module2"
    return None, "none_decodable"


def policy_compare_no_flags(
    code: RSCode, word1: MemoryWord, word2: MemoryWord
) -> PolicyResult:
    """Decode both, require agreement, without flag information."""
    r1, r2 = _decode_both(code, word1, word2)
    if r1 is None and r2 is None:
        return None, "none_decodable"
    if r1 is None or r2 is None:
        winner = r1 if r1 is not None else r2
        return winner.data, "single"
    if r1.data == r2.data:
        return r1.data, "agree"
    return None, "disagree"


def policy_module1_only(
    code: RSCode, word1: MemoryWord, word2: MemoryWord
) -> PolicyResult:
    """Reads served from module 1 alone (replica used for erasures only)."""
    r1, _r2 = _decode_both(code, word1, word2)
    if r1 is None:
        return None, "undecodable"
    return r1.data, "module1"


ARBITER_POLICIES: Dict[str, Policy] = {
    "flag_compare": policy_flag_compare,
    "first_decodable": policy_first_decodable,
    "compare_no_flags": policy_compare_no_flags,
    "module1_only": policy_module1_only,
}


def compare_policies(
    code: RSCode,
    t_end: float,
    seu_per_bit: float,
    erasure_per_symbol: float,
    trials: int,
    rng,
) -> Dict[str, Dict[str, float]]:
    """Failure/silent-corruption rates of every policy, same fault draws.

    Each trial injects one fault history into a duplex pair and asks all
    policies to read it, so policies are compared on identical damage.
    Returns ``{policy: {"failure": .., "silent": ..}}`` where *failure*
    counts wrong-or-missing output and *silent* only wrong output.
    """
    from .faults import (
        merge_event_streams,
        sample_permanent_events,
        sample_seu_events,
    )
    from .systems import DuplexSystem

    counts = {
        name: {"failure": 0, "silent": 0} for name in ARBITER_POLICIES
    }
    for _ in range(trials):
        system = DuplexSystem(code, rng=rng)
        streams = []
        for module in range(2):
            streams.append(
                sample_seu_events(
                    rng, seu_per_bit, code.n, code.m, t_end, module
                )
            )
            streams.append(
                sample_permanent_events(
                    rng, erasure_per_symbol, code.n, code.m, t_end, module
                )
            )
        for event in merge_event_streams(*streams):
            system.apply_event(event)
        for name, policy in ARBITER_POLICIES.items():
            data, _detail = policy(code, system.modules[0], system.modules[1])
            if data != system.data:
                counts[name]["failure"] += 1
                if data is not None:
                    counts[name]["silent"] += 1
    return {
        name: {k: v / trials for k, v in c.items()}
        for name, c in counts.items()
    }
