"""Named fault-physics scenario presets.

Each :class:`Scenario` is a fully seeded, self-contained campaign
configuration pairing a correlated fault pattern (and optionally a
mission rate schedule) with code geometry, rates, horizon, and a trial
budget — selectable as ``repro campaign --scenario NAME``.  The catalog
spans three validation regimes:

* **in-model** presets (``iid-baseline``, ``solar-flare-mission``) whose
  pattern is i.i.d.-reducible: the paper's analytic chains predict them
  exactly, which the campaign checks cell by cell and the
  ``scenario-analytic-parity`` differential target fuzzes nightly;
* **out-of-model** presets (``mbu-cluster``, ``row-burst``,
  ``col-burst``, ``mixed-field``, ``stuck-row-permanent``) exercising
  correlated physics the chains cannot see — these demonstrate graceful
  degradation: no model column, but full robustness accounting
  (detected-uncorrectable vs silent-miscorrection counts);
* a **stress** preset (``beyond-capacity-stress``) driving multi-symbol
  bursts past the code's correction capability, where the decoder's
  failure mass visibly splits into detected refusals and silent
  miscorrections that the i.i.d. baseline does not exhibit.

Rates sit in the MC-visible band (1e-3 .. 6e-3 errors/bit/day over a
48 h horizon) so modest trial budgets resolve the failure probability;
they are *scaled up* from the paper's Section 6 environment exactly like
the repo's standard validation campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .campaign import CampaignCell
from .patterns import parse_pattern

__all__ = [
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "render_catalog",
]


@dataclass(frozen=True)
class Scenario:
    """One named, seeded campaign preset.

    ``summary`` is the one-line catalog entry; ``physics`` states the
    fault mechanism being modelled.  ``cells`` carry the canonical
    pattern/schedule spec strings, so a scenario is plain data all the
    way into fingerprints and manifests.
    """

    name: str
    summary: str
    physics: str
    cells: Tuple[CampaignCell, ...]
    seed: int = 2005
    trials: int = 400
    n: int = 18
    k: int = 16
    m: int = 8
    t_end_hours: float = 48.0

    @property
    def iid_reducible(self) -> bool:
        """True when every cell's law matches the paper's i.i.d. model.

        Such presets must agree with :mod:`repro.memory` analytics
        within MC confidence — the catalog's cross-validation contract.
        """
        return all(
            cell.pattern is None
            or parse_pattern(cell.pattern).iid_reducible
            for cell in self.cells
        )


def _pair(
    seu: float,
    perm: float = 0.0,
    tsc: float | None = None,
    pattern: str | None = None,
    schedule: str | None = None,
) -> Tuple[CampaignCell, CampaignCell]:
    """The standard simplex + duplex cell pair of one environment."""
    return (
        CampaignCell(
            arrangement="simplex",
            seu_per_bit_day=seu,
            erasure_per_symbol_day=perm,
            scrub_period_seconds=tsc,
            pattern=pattern,
            schedule=schedule,
        ),
        CampaignCell(
            arrangement="duplex",
            seu_per_bit_day=seu,
            erasure_per_symbol_day=perm,
            scrub_period_seconds=tsc,
            pattern=pattern,
            schedule=schedule,
        ),
    )


def _catalog() -> Dict[str, Scenario]:
    presets = [
        Scenario(
            name="iid-baseline",
            summary="the paper's i.i.d. SEU model, run through the "
            "pattern sampler",
            physics="independent single-cell upsets, constant rate — "
            "the control every correlated preset is compared against",
            cells=_pair(1.2e-3, pattern="1BIT"),
            seed=2005,
        ),
        Scenario(
            name="mbu-cluster",
            summary="occasional multi-bit upsets from single strikes",
            physics="high-LET ions deposit charge across 3 adjacent "
            "cells; bursts may straddle a symbol boundary",
            cells=_pair(2e-3, pattern="0.9*1BIT+0.1*MBU:3"),
            seed=2013,
        ),
        Scenario(
            name="row-burst",
            summary="row glitches corrupting runs of adjacent symbols",
            physics="a wordline/driver transient garbles 4 consecutive "
            "symbols of one codeword in a single instant",
            cells=_pair(2e-3, pattern="0.85*1BIT+0.15*ROW:4"),
            seed=2021,
        ),
        Scenario(
            name="col-burst",
            summary="column glitches flipping one bit plane",
            physics="a bitline transient flips the same cell position "
            "across 6 consecutive symbols — many symbols, one bit each",
            cells=_pair(2e-3, pattern="0.85*1BIT+0.15*COL:6"),
            seed=2029,
        ),
        Scenario(
            name="mixed-field",
            summary="composite environment: SEUs + MBUs + row/col events",
            physics="a realistic radiation mix dominated by single-cell "
            "upsets with rare clustered and array-level events",
            cells=_pair(
                2e-3,
                pattern="0.82*1BIT+0.1*MBU:3+0.05*ROW:4+0.03*COL:6",
            ),
            seed=2037,
        ),
        Scenario(
            name="solar-flare-mission",
            summary="i.i.d. upsets under a quiet/flare rate schedule",
            physics="a 42 h quiet cruise followed by a 6 h solar-flare "
            "enhancement at 8x the quiet SEU rate; i.i.d.-reducible, so "
            "the piecewise-constant mission chains predict it exactly",
            cells=_pair(8e-4, pattern="1BIT", schedule="42.0h@1.0,6.0h@8.0"),
            seed=2045,
        ),
        Scenario(
            name="stuck-row-permanent",
            summary="transient field plus correlated permanent row faults",
            physics="driver wearout sticks 3 adjacent symbols at once; "
            "hourly scrubbing clears transients but not the stuck row",
            cells=_pair(
                2e-3, tsc=3600.0, pattern="0.9*1BIT+0.1*ROW:3!"
            ),
            seed=2053,
        ),
        Scenario(
            name="beyond-capacity-stress",
            summary="correlated bursts past the code's correction power",
            physics="wide row and MBU events corrupt more symbols than "
            "RS(18,16) can correct, splitting failures into detected "
            "refusals and silent miscorrections",
            cells=_pair(6e-3, pattern="0.4*1BIT+0.35*ROW:6+0.25*MBU:8"),
            seed=2061,
            trials=300,
        ),
    ]
    return {s.name: s for s in presets}


#: The catalog, in presentation order.
SCENARIOS: Dict[str, Scenario] = _catalog()


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a preset; unknown names raise ValueError (CLI exit 2)."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            + ", ".join(scenario_names())
        )
    return scenario


def render_catalog() -> str:
    """Human-readable catalog table for ``repro campaign --list-scenarios``."""
    width = max(len(name) for name in SCENARIOS)
    lines = []
    for scenario in SCENARIOS.values():
        tag = "in-model" if scenario.iid_reducible else "out-of-model"
        lines.append(
            f"{scenario.name:<{width}}  [{tag:>12}]  {scenario.summary}"
        )
    return "\n".join(lines)
