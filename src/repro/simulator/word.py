"""Bit-level storage model of one coded memory word.

A :class:`MemoryWord` stores ``n`` symbols of ``m`` bits.  Transient
faults (SEUs) flip the stored charge of one cell; permanent faults leave a
cell *stuck* at a value that survives rewrites.  Permanent faults are
assumed located by the platform's self-checking circuitry (Iddq monitoring
etc., paper Section 2), so the word tracks the set of located positions
that the decoder may treat as erasures.
"""

from __future__ import annotations

from typing import List, Sequence, Set


class MemoryWord:
    """``n`` symbols of ``m`` bits with SEU and stuck-at fault support.

    Parameters
    ----------
    symbols:
        Initial stored codeword (ascending position order).
    m:
        Bits per symbol.
    """

    def __init__(self, symbols: Sequence[int], m: int):
        self.m = m
        self.n = len(symbols)
        limit = 1 << m
        for s in symbols:
            if not 0 <= s < limit:
                raise ValueError(f"symbol {s} out of range for m={m}")
        self._logical: List[int] = list(symbols)
        self._stuck_mask: List[int] = [0] * self.n
        self._stuck_value: List[int] = [0] * self.n
        self._located: Set[int] = set()

    # -- fault injection --------------------------------------------------

    def flip_bit(self, symbol: int, bit: int) -> None:
        """SEU: invert one stored cell.

        A stuck cell holds its forced value regardless of incident
        particles, so flips against stuck bits are absorbed.
        """
        self._check_cell(symbol, bit)
        mask = 1 << bit
        if self._stuck_mask[symbol] & mask:
            return
        self._logical[symbol] ^= mask

    def flip_mask(self, symbol: int, mask: int) -> None:
        """Correlated SEU: invert every masked cell of one symbol at once.

        The physical event is one particle strike (or row/column glitch)
        upsetting several cells of the same symbol in the same instant;
        stuck cells absorb their share of the strike exactly as in
        :meth:`flip_bit`.
        """
        self._check_mask(symbol, mask)
        self._logical[symbol] ^= mask & ~self._stuck_mask[symbol]

    def make_stuck(self, symbol: int, bit: int, value: int) -> None:
        """Permanent fault: force one cell to ``value`` (0 or 1) forever.

        The position is recorded as *located* — the paper assumes on-line
        self-checking identifies permanent faults, turning them into
        erasures for the decoder.
        """
        self._check_cell(symbol, bit)
        if value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {value}")
        mask = 1 << bit
        self._stuck_mask[symbol] |= mask
        if value:
            self._stuck_value[symbol] |= mask
        else:
            self._stuck_value[symbol] &= ~mask
        self._located.add(symbol)

    def make_stuck_mask(self, symbol: int, mask: int, values: int) -> None:
        """Correlated permanent fault: stick every masked cell at once.

        The masked cells of ``symbol`` are forced to the corresponding
        bits of ``values`` forever; the symbol is recorded as located
        (one erasure), exactly as for a single stuck cell.
        """
        self._check_mask(symbol, mask)
        if values & ~mask:
            raise ValueError(
                f"stuck values {values:#x} extend outside mask {mask:#x}"
            )
        self._stuck_mask[symbol] |= mask
        self._stuck_value[symbol] = (
            self._stuck_value[symbol] & ~mask
        ) | values
        self._located.add(symbol)

    # -- access ------------------------------------------------------------

    def read_symbol(self, symbol: int) -> int:
        """Stored value of one symbol, stuck cells overriding."""
        if not 0 <= symbol < self.n:
            raise IndexError(f"symbol index {symbol} out of range")
        mask = self._stuck_mask[symbol]
        return (self._logical[symbol] & ~mask) | (self._stuck_value[symbol] & mask)

    def read(self) -> List[int]:
        """Stored word as seen by the decoder."""
        return [self.read_symbol(i) for i in range(self.n)]

    def write(self, symbols: Sequence[int]) -> None:
        """Rewrite the whole word (scrub writeback).

        Stuck cells keep their forced value — rewriting does not repair
        permanent faults, which is why scrubbing clears random errors but
        leaves erasures in place (paper Section 5).
        """
        if len(symbols) != self.n:
            raise ValueError(f"expected {self.n} symbols, got {len(symbols)}")
        self._logical = list(symbols)

    @property
    def located_positions(self) -> List[int]:
        """Sorted positions of located permanent faults (erasure info)."""
        return sorted(self._located)

    def is_erased(self, symbol: int) -> bool:
        """True if the symbol holds a located permanent fault."""
        return symbol in self._located

    def _check_cell(self, symbol: int, bit: int) -> None:
        if not 0 <= symbol < self.n:
            raise IndexError(f"symbol index {symbol} out of range")
        if not 0 <= bit < self.m:
            raise IndexError(f"bit index {bit} out of range for m={self.m}")

    def _check_mask(self, symbol: int, mask: int) -> None:
        if not 0 <= symbol < self.n:
            raise IndexError(f"symbol index {symbol} out of range")
        if not 0 < mask < (1 << self.m):
            raise ValueError(
                f"cell mask must be a nonzero {self.m}-bit value, "
                f"got {mask:#x}"
            )

    def __repr__(self) -> str:
        return (
            f"MemoryWord(n={self.n}, m={self.m}, "
            f"located={len(self._located)})"
        )
