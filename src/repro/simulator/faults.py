"""Poisson fault-event generation.

The space environment of the paper is abstracted to two exponential
processes per memory module: SEU bit flips at rate λ per bit and permanent
faults at rate λe per symbol.  This module samples concrete timed event
streams from those processes for the fault-injection simulator — the
substitute for radiation-beam or on-orbit data, preserving exactly the
stochastic model the paper's chains assume.  Correlated (multi-cell)
event generation lives in :mod:`repro.simulator.patterns` and reuses the
same :class:`FaultEvent` record with a symbol-level ``mask``.

Event streams are emitted and merged in a *total* deterministic order:
ascending time, with equal-time ties broken by ``(kind, module, symbol,
bit, mask, stuck_value)`` — see :func:`event_sort_key`.  Equal-time
events are common under correlated patterns (every cell of one burst
shares its arrival instant), and a platform-dependent tie order would
make campaign results platform-dependent too.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Tuple

import numpy as np


class FaultKind(Enum):
    """Classes of injected events."""

    SEU = "seu"
    PERMANENT = "permanent"
    SCRUB = "scrub"


#: Deterministic rank of each kind for equal-time tie-breaking.  Faults
#: apply before a same-instant scrub (the scrub then sees — and may
#: clean — their damage); transients rank before permanents (the stuck
#: level then overrides the struck cell either way, so the choice is
#: about determinism, not physics).
_KIND_RANK = {FaultKind.SEU: 0, FaultKind.PERMANENT: 1, FaultKind.SCRUB: 2}


@dataclass(frozen=True)
class FaultEvent:
    """One timed event.

    ``bit``/``stuck_value`` address a single cell when ``mask == 0``;
    a nonzero ``mask`` addresses several cells of one symbol at once
    (correlated patterns): for an SEU the masked cells flip, for a
    permanent fault the masked cells stick at the corresponding bits of
    ``stuck_value``.
    """

    time: float
    kind: FaultKind
    module: int = 0
    symbol: int = 0
    bit: int = 0
    stuck_value: int = 0
    mask: int = 0


def event_sort_key(
    event: FaultEvent,
) -> Tuple[float, int, int, int, int, int, int]:
    """Total deterministic ordering: time, then a full-field tie-break.

    Sorting by this key makes merged event streams — and therefore
    campaign results — bit-identical across platforms even when several
    events share one timestamp (correlated bursts, simultaneous module
    strikes).
    """
    return (
        event.time,
        _KIND_RANK[event.kind],
        event.module,
        event.symbol,
        event.bit,
        event.mask,
        event.stuck_value,
    )


def sort_events(events: List[FaultEvent]) -> List[FaultEvent]:
    """Events in the canonical total order (see :func:`event_sort_key`)."""
    return sorted(events, key=event_sort_key)


def sample_seu_events(
    rng: np.random.Generator,
    rate_per_bit: float,
    n_symbols: int,
    m: int,
    t_end: float,
    module: int = 0,
) -> List[FaultEvent]:
    """SEU events over ``[0, t_end]`` for one module, time-sorted.

    The superposition of ``n_symbols * m`` independent per-bit Poisson
    processes is one Poisson process of rate ``rate_per_bit * n * m`` with
    uniformly random cell assignment.  The sampled (time, cell) tuples
    are emitted already in canonical order — sorting whole events keeps
    each time paired with its drawn cell, so the stream is sample-for-
    sample identical to the historical unsorted emission once merged.
    """
    total_rate = rate_per_bit * n_symbols * m
    if total_rate <= 0 or t_end <= 0:
        return []
    count = rng.poisson(total_rate * t_end)
    times = rng.uniform(0.0, t_end, size=count)
    symbols = rng.integers(0, n_symbols, size=count)
    bits = rng.integers(0, m, size=count)
    return sort_events(
        [
            FaultEvent(float(t), FaultKind.SEU, module, int(s), int(b))
            for t, s, b in zip(times, symbols, bits)
        ]
    )


def sample_permanent_events(
    rng: np.random.Generator,
    rate_per_symbol: float,
    n_symbols: int,
    m: int,
    t_end: float,
    module: int = 0,
) -> List[FaultEvent]:
    """Permanent-fault events over ``[0, t_end]`` for one module, time-sorted.

    Each event pins one uniformly chosen cell of the struck symbol to a
    uniformly random value (stuck-at-0/1 equally likely) — with
    probability 1/2 the stuck value matches the stored bit, in which case
    the fault is benign until a later rewrite, exactly as in real parts.
    """
    total_rate = rate_per_symbol * n_symbols
    if total_rate <= 0 or t_end <= 0:
        return []
    count = rng.poisson(total_rate * t_end)
    times = rng.uniform(0.0, t_end, size=count)
    symbols = rng.integers(0, n_symbols, size=count)
    bits = rng.integers(0, m, size=count)
    values = rng.integers(0, 2, size=count)
    return sort_events(
        [
            FaultEvent(float(t), FaultKind.PERMANENT, module, int(s), int(b), int(v))
            for t, s, b, v in zip(times, symbols, bits, values)
        ]
    )


def scrub_schedule(
    t_end: float,
    period: float | None,
    rng: np.random.Generator | None = None,
    exponential: bool = False,
) -> List[FaultEvent]:
    """Scrub events over ``[0, t_end]``.

    ``exponential=True`` draws exponential inter-scrub gaps of mean
    ``period`` (the paper's rate-1/Tsc modelling); otherwise scrubs fire
    deterministically at each multiple of ``period``.
    """
    if period is None or period <= 0 or t_end <= 0:
        return []
    events: List[FaultEvent] = []
    if exponential:
        if rng is None:
            raise ValueError("exponential scrub schedule needs an rng")
        t = rng.exponential(period)
        while t < t_end:
            events.append(FaultEvent(float(t), FaultKind.SCRUB))
            t += rng.exponential(period)
    else:
        steps = int(t_end / period)
        events = [
            FaultEvent(i * period, FaultKind.SCRUB) for i in range(1, steps + 1)
        ]
    return events


def merge_event_streams(*streams: List[FaultEvent]) -> Iterator[FaultEvent]:
    """Deterministic time-ordered merge of several event lists.

    Equal-time events from different streams are interleaved by the full
    :func:`event_sort_key` tie-break, so the merged order — and any
    campaign result derived from it — is identical on every platform.
    """
    return iter(
        heapq.merge(
            *[sort_events(s) for s in streams], key=event_sort_key
        )
    )
