"""Poisson fault-event generation.

The space environment of the paper is abstracted to two exponential
processes per memory module: SEU bit flips at rate λ per bit and permanent
faults at rate λe per symbol.  This module samples concrete timed event
streams from those processes for the fault-injection simulator — the
substitute for radiation-beam or on-orbit data, preserving exactly the
stochastic model the paper's chains assume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List

import numpy as np


class FaultKind(Enum):
    """Classes of injected events."""

    SEU = "seu"
    PERMANENT = "permanent"
    SCRUB = "scrub"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One timed event; ordering is by time (heap-friendly)."""

    time: float
    kind: FaultKind = field(compare=False)
    module: int = field(compare=False, default=0)
    symbol: int = field(compare=False, default=0)
    bit: int = field(compare=False, default=0)
    stuck_value: int = field(compare=False, default=0)


def sample_seu_events(
    rng: np.random.Generator,
    rate_per_bit: float,
    n_symbols: int,
    m: int,
    t_end: float,
    module: int = 0,
) -> List[FaultEvent]:
    """SEU events over ``[0, t_end]`` for one module.

    The superposition of ``n_symbols * m`` independent per-bit Poisson
    processes is one Poisson process of rate ``rate_per_bit * n * m`` with
    uniformly random cell assignment.
    """
    total_rate = rate_per_bit * n_symbols * m
    if total_rate <= 0 or t_end <= 0:
        return []
    count = rng.poisson(total_rate * t_end)
    times = rng.uniform(0.0, t_end, size=count)
    symbols = rng.integers(0, n_symbols, size=count)
    bits = rng.integers(0, m, size=count)
    return [
        FaultEvent(float(t), FaultKind.SEU, module, int(s), int(b))
        for t, s, b in zip(times, symbols, bits)
    ]


def sample_permanent_events(
    rng: np.random.Generator,
    rate_per_symbol: float,
    n_symbols: int,
    m: int,
    t_end: float,
    module: int = 0,
) -> List[FaultEvent]:
    """Permanent-fault events over ``[0, t_end]`` for one module.

    Each event pins one uniformly chosen cell of the struck symbol to a
    uniformly random value (stuck-at-0/1 equally likely) — with
    probability 1/2 the stuck value matches the stored bit, in which case
    the fault is benign until a later rewrite, exactly as in real parts.
    """
    total_rate = rate_per_symbol * n_symbols
    if total_rate <= 0 or t_end <= 0:
        return []
    count = rng.poisson(total_rate * t_end)
    times = rng.uniform(0.0, t_end, size=count)
    symbols = rng.integers(0, n_symbols, size=count)
    bits = rng.integers(0, m, size=count)
    values = rng.integers(0, 2, size=count)
    return [
        FaultEvent(float(t), FaultKind.PERMANENT, module, int(s), int(b), int(v))
        for t, s, b, v in zip(times, symbols, bits, values)
    ]


def scrub_schedule(
    t_end: float,
    period: float | None,
    rng: np.random.Generator | None = None,
    exponential: bool = False,
) -> List[FaultEvent]:
    """Scrub events over ``[0, t_end]``.

    ``exponential=True`` draws exponential inter-scrub gaps of mean
    ``period`` (the paper's rate-1/Tsc modelling); otherwise scrubs fire
    deterministically at each multiple of ``period``.
    """
    if period is None or period <= 0 or t_end <= 0:
        return []
    events: List[FaultEvent] = []
    if exponential:
        if rng is None:
            raise ValueError("exponential scrub schedule needs an rng")
        t = rng.exponential(period)
        while t < t_end:
            events.append(FaultEvent(float(t), FaultKind.SCRUB))
            t += rng.exponential(period)
    else:
        steps = int(t_end / period)
        events = [
            FaultEvent(i * period, FaultKind.SCRUB) for i in range(1, steps + 1)
        ]
    return events


def merge_event_streams(*streams: List[FaultEvent]) -> Iterator[FaultEvent]:
    """Time-ordered merge of several event lists."""
    return iter(heapq.merge(*[sorted(s) for s in streams]))
