"""Correlated fault-pattern grammar and time-varying rate schedules.

The paper's stochastic model is i.i.d. SEU bit flips plus independent
per-symbol stuck-ats; real highly-reliable memories also fail in
*correlated* patterns — multi-bit upsets spanning adjacent cells,
row/column faults taking out many symbols of one codeword, and
mission-phase-dependent SEU rates.  This module is the injection layer
for that physics:

* :func:`parse_pattern` — a composable textual grammar for fault-event
  *shapes*: ``1BIT`` (the paper's SEU), ``kSYM`` adjacent-symbol
  clusters, ``MBU:w`` adjacent-cell bursts, ``ROW``/``COL`` correlated
  multi-symbol events, a ``!`` suffix for the permanent (stuck-at)
  variant of any shape, and weighted mixtures such as
  ``"0.9*1BIT+0.08*MBU:3+0.02*ROW"``.
* :class:`RateSchedule` — piecewise-constant, cyclically repeating
  modulation of the transient arrival rate (orbit/mission profiles),
  mirroring :mod:`repro.memory.mission` phase-for-phase so scheduled
  i.i.d. scenarios stay analytically checkable.
* :func:`sample_pattern_events` — a seeded compound-Poisson event
  generator: arrivals at the *same total rate as the paper's i.i.d.
  model* (``seu_per_bit * n * m``, optionally schedule-modulated), each
  arrival drawn from the mixture and expanded into concrete
  :class:`~repro.simulator.faults.FaultEvent` records.

Because a pure ``1BIT`` mixture reproduces the i.i.d. model's law
exactly, every i.i.d.-reducible pattern can be cross-validated against
:mod:`repro.memory` analytic chains (differential-verify target
``scenario-analytic-parity``); everything else is deliberately
*out-of-model* physics whose graceful-degradation behaviour the
miscorrection accounting measures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from .faults import FaultEvent, FaultKind

__all__ = [
    "PatternKind",
    "PatternTerm",
    "FaultPattern",
    "RateSchedule",
    "IID_1BIT",
    "parse_pattern",
    "format_pattern",
    "parse_schedule",
    "format_schedule",
    "expand_arrivals",
    "sample_pattern_events",
]


class PatternKind(Enum):
    """Shape classes of one correlated fault arrival."""

    BIT = "1BIT"  # single-cell upset: the paper's i.i.d. SEU
    SYM = "SYM"  # cluster of k adjacent symbols, each fully corrupted
    MBU = "MBU"  # burst of w adjacent cells (may straddle symbols)
    ROW = "ROW"  # row fault: a run of symbols of one word (default: all)
    COL = "COL"  # column fault: one bit plane across a run of symbols


@dataclass(frozen=True)
class PatternTerm:
    """One weighted mixture component of a :class:`FaultPattern`.

    ``size`` is the shape parameter (cluster symbols, burst cells, or
    row/column span); ``None`` means the shape's default (3 cells for
    ``MBU``, the whole word for ``ROW``/``COL``).  ``permanent`` selects
    the stuck-at variant (grammar suffix ``!``).
    """

    kind: PatternKind
    size: Optional[int] = None
    permanent: bool = False
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.weight > 0.0 and np.isfinite(self.weight)):
            raise ValueError(
                f"pattern term weight must be positive and finite, "
                f"got {self.weight!r}"
            )
        if self.size is not None and self.size < 1:
            raise ValueError(
                f"pattern term size must be >= 1, got {self.size}"
            )
        if self.kind is PatternKind.BIT and self.size is not None:
            raise ValueError("1BIT takes no size parameter")
        if self.kind is PatternKind.SYM and self.size is None:
            raise ValueError("kSYM terms need an explicit cluster size")

    def token(self) -> str:
        """Canonical token text (without the weight prefix)."""
        if self.kind is PatternKind.BIT:
            base = "1BIT"
        elif self.kind is PatternKind.SYM:
            base = f"{self.size}SYM"
        else:
            base = self.kind.value
            if self.size is not None:
                base += f":{self.size}"
        return base + ("!" if self.permanent else "")


@dataclass(frozen=True)
class FaultPattern:
    """A weighted mixture of correlated fault shapes."""

    terms: Tuple[PatternTerm, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a fault pattern needs at least one term")
        total = sum(t.weight for t in self.terms)
        if not (total > 0.0 and np.isfinite(total)):
            raise ValueError(
                f"pattern term weights must sum to a positive finite "
                f"value, got {total!r}"
            )

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized mixture probabilities, term order preserved."""
        weights = np.asarray([t.weight for t in self.terms], dtype=float)
        return weights / weights.sum()

    @property
    def iid_reducible(self) -> bool:
        """True when the mixture's law matches the paper's i.i.d. model.

        ``1BIT`` flips one uniformly random cell; ``1SYM`` corrupts one
        uniformly random symbol.  Both corrupt exactly one symbol per
        arrival, which is all the symbol-level Markov chains can see, so
        any transient-only mixture of the two is analytically checkable
        against :mod:`repro.memory`.
        """
        return all(
            not t.permanent
            and (
                t.kind is PatternKind.BIT
                or (t.kind is PatternKind.SYM and t.size == 1)
            )
            for t in self.terms
        )

    def spec(self) -> str:
        """Canonical grammar text; ``parse_pattern`` round-trips it."""
        return format_pattern(self)


#: The paper's own fault model as a pattern: one uniformly random cell
#: flipped per arrival.
IID_1BIT = FaultPattern((PatternTerm(PatternKind.BIT),))

_TOKEN_RE = re.compile(
    r"^(?:(?P<ksym>\d+)SYM|(?P<name>1BIT|MBU|ROW|COL))"
    r"(?::(?P<param>-?\d+))?(?P<perm>!)?$"
)


def _parse_term(text: str) -> PatternTerm:
    weight = 1.0
    token = text
    if "*" in text:
        weight_text, _, token = text.partition("*")
        try:
            weight = float(weight_text)
        except ValueError:
            raise ValueError(
                f"bad pattern weight {weight_text!r} in term {text!r}"
            ) from None
    match = _TOKEN_RE.match(token.strip())
    if match is None:
        raise ValueError(
            f"unknown pattern token {token.strip()!r} (expected 1BIT, "
            f"kSYM, MBU[:w], ROW[:span], or COL[:span], optionally "
            f"suffixed with '!')"
        )
    permanent = match.group("perm") is not None
    param = match.group("param")
    size = int(param) if param is not None else None
    if match.group("ksym") is not None:
        if size is not None:
            raise ValueError(
                f"kSYM terms carry their size in the token name; "
                f"{token.strip()!r} also has a ':' parameter"
            )
        size = int(match.group("ksym"))
        kind = PatternKind.SYM
    else:
        kind = PatternKind(match.group("name")) if match.group(
            "name"
        ) != "1BIT" else PatternKind.BIT
        if kind is PatternKind.BIT and size is not None:
            raise ValueError("1BIT takes no ':' parameter")
    return PatternTerm(kind=kind, size=size, permanent=permanent, weight=weight)


def parse_pattern(spec: Union[str, FaultPattern]) -> FaultPattern:
    """Parse a pattern spec like ``"0.9*1BIT+0.08*MBU:3+0.02*ROW"``.

    Terms are ``[WEIGHT*]TOKEN`` joined by ``+``; a missing weight means
    1.  Malformed specs raise :class:`ValueError` (the CLI maps these to
    exit code 2).
    """
    if isinstance(spec, FaultPattern):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty fault-pattern spec {spec!r}")
    terms = tuple(
        _parse_term(part.strip()) for part in spec.split("+") if True
    )
    return FaultPattern(terms)


def format_pattern(pattern: FaultPattern) -> str:
    """Canonical text for a pattern; ``parse_pattern`` inverts it exactly.

    Weights are emitted with :func:`repr`, which round-trips Python
    floats bit-for-bit; a weight of exactly 1 on a single-term pattern
    is omitted.
    """
    parts = []
    for term in pattern.terms:
        if len(pattern.terms) == 1 and term.weight == 1.0:
            parts.append(term.token())
        else:
            parts.append(f"{term.weight!r}*{term.token()}")
    return "+".join(parts)


# --------------------------------------------------------------------------
# time-varying rate schedules
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RateSchedule:
    """Piecewise-constant, cyclically repeating rate modulation.

    ``segments`` are ``(duration_hours, factor)`` legs; the transient
    arrival rate inside a leg is ``base_rate * factor``.  Past the total
    cycle duration the schedule repeats from the first leg (periodic
    orbits), exactly like :class:`repro.memory.mission.MissionProfile`.
    """

    segments: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a rate schedule needs at least one segment")
        for duration, factor in self.segments:
            if not (duration > 0.0 and np.isfinite(duration)):
                raise ValueError(
                    f"schedule segment durations must be positive and "
                    f"finite, got {duration!r}"
                )
            if not (factor >= 0.0 and np.isfinite(factor)):
                raise ValueError(
                    f"schedule segment factors must be nonnegative and "
                    f"finite, got {factor!r}"
                )

    @property
    def cycle_hours(self) -> float:
        return sum(d for d, _f in self.segments)

    def integral(self, t_end: float) -> float:
        """``∫₀^t_end factor(t) dt`` with cyclic repetition."""
        if t_end <= 0.0:
            return 0.0
        cycle = self.cycle_hours
        cycle_area = sum(d * f for d, f in self.segments)
        full, rest = divmod(t_end, cycle)
        area = full * cycle_area
        for duration, factor in self.segments:
            if rest <= 0.0:
                break
            step = min(duration, rest)
            area += step * factor
            rest -= step
        return area

    def windows(self, t_end: float) -> List[Tuple[float, float, float]]:
        """Absolute ``(start, end, factor)`` windows covering ``[0, t_end]``."""
        out: List[Tuple[float, float, float]] = []
        t = 0.0
        while t < t_end:
            for duration, factor in self.segments:
                if t >= t_end:
                    break
                end = min(t + duration, t_end)
                out.append((t, end, factor))
                t = end
        return out

    def sample_times(
        self, rng: np.random.Generator, t_end: float, count: int
    ) -> np.ndarray:
        """``count`` arrival instants on ``[0, t_end]`` with density ∝ factor."""
        if count <= 0:
            return np.zeros(0)
        windows = self.windows(t_end)
        weights = np.asarray([(e - s) * f for s, e, f in windows])
        total = weights.sum()
        if total <= 0.0:
            raise ValueError(
                "cannot sample arrival times from an all-zero schedule"
            )
        starts = np.asarray([s for s, _e, _f in windows])
        spans = np.asarray([e - s for s, e, _f in windows])
        idx = rng.choice(len(windows), size=count, p=weights / total)
        times = starts[idx] + rng.uniform(0.0, 1.0, size=count) * spans[idx]
        return np.sort(times)

    def mission_phases(self, base_rates, name_prefix: str = "seg"):
        """The schedule as :class:`~repro.memory.mission.MissionPhase` legs.

        Only the transient (SEU) rate is modulated — schedules model the
        radiation environment, not wearout — so permanent and scrub
        rates carry through unchanged.  This is the bridge that keeps
        scheduled i.i.d. scenarios analytically checkable.
        """
        from dataclasses import replace

        from ..memory.mission import MissionPhase

        return [
            MissionPhase(
                name=f"{name_prefix}{i}",
                duration_hours=duration,
                rates=replace(
                    base_rates, seu_per_bit=base_rates.seu_per_bit * factor
                ),
            )
            for i, (duration, factor) in enumerate(self.segments)
        ]

    def spec(self) -> str:
        return format_schedule(self)


_SEGMENT_RE = re.compile(r"^(?P<dur>[^@]+)h@(?P<factor>.+)$")


def parse_schedule(
    spec: Union[str, RateSchedule, None],
) -> Optional[RateSchedule]:
    """Parse ``"1.36h@1,0.24h@23.3"`` into a :class:`RateSchedule`.

    Each segment is ``<duration-hours>h@<factor>``; segments are joined
    by commas.  ``None`` passes through (no schedule).
    """
    if spec is None or isinstance(spec, RateSchedule):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty rate-schedule spec {spec!r}")
    segments = []
    for part in spec.split(","):
        match = _SEGMENT_RE.match(part.strip())
        if match is None:
            raise ValueError(
                f"bad schedule segment {part.strip()!r} "
                f"(expected '<hours>h@<factor>')"
            )
        try:
            duration = float(match.group("dur"))
            factor = float(match.group("factor"))
        except ValueError:
            raise ValueError(
                f"bad schedule segment numbers in {part.strip()!r}"
            ) from None
        segments.append((duration, factor))
    return RateSchedule(tuple(segments))


def format_schedule(schedule: RateSchedule) -> str:
    """Canonical text for a schedule; ``parse_schedule`` inverts it."""
    return ",".join(f"{d!r}h@{f!r}" for d, f in schedule.segments)


# --------------------------------------------------------------------------
# seeded event generation
# --------------------------------------------------------------------------


def _nonzero_mask(rng: np.random.Generator, m: int) -> int:
    """A uniformly random nonzero m-bit corruption mask."""
    return int(rng.integers(1, 1 << m))


def _expand_term(
    rng: np.random.Generator,
    term: PatternTerm,
    n: int,
    m: int,
    t: float,
    module: int,
) -> List[FaultEvent]:
    """Concrete fault events of one arrival of shape ``term`` at time ``t``.

    Anchors are uniform over every position whose span can intersect the
    word (the clipped-cluster geometry of :mod:`repro.simulator.mbu`),
    so edge symbols see partial clusters exactly as in a physical array.
    """
    kind = FaultKind.PERMANENT if term.permanent else FaultKind.SEU
    events: List[FaultEvent] = []
    if term.kind is PatternKind.BIT:
        symbol = int(rng.integers(0, n))
        bit = int(rng.integers(0, m))
        if term.permanent:
            events.append(
                FaultEvent(
                    t, kind, module, symbol, bit, int(rng.integers(0, 2))
                )
            )
        else:
            events.append(FaultEvent(t, kind, module, symbol, bit))
    elif term.kind in (PatternKind.SYM, PatternKind.ROW):
        span = term.size if term.size is not None else n
        span = min(span, n)
        anchor = int(rng.integers(-(span - 1), n)) if span > 1 else int(
            rng.integers(0, n)
        )
        for symbol in range(max(anchor, 0), min(anchor + span, n)):
            if term.permanent:
                # One stuck cell per symbol suffices: the word marks the
                # whole symbol as located (an erasure), the paper's
                # per-symbol stuck-at abstraction.
                bit = int(rng.integers(0, m))
                events.append(
                    FaultEvent(
                        t, kind, module, symbol, bit, int(rng.integers(0, 2))
                    )
                )
            else:
                events.append(
                    FaultEvent(
                        t,
                        kind,
                        module,
                        symbol,
                        0,
                        0,
                        mask=_nonzero_mask(rng, m),
                    )
                )
    elif term.kind is PatternKind.MBU:
        width = term.size if term.size is not None else 3
        cells = n * m
        width = min(width, cells)
        anchor = int(rng.integers(-(width - 1), cells)) if width > 1 else int(
            rng.integers(0, cells)
        )
        lo, hi = max(anchor, 0), min(anchor + width, cells)
        # Group the burst's cells per symbol into one mask event each.
        by_symbol: dict = {}
        for cell in range(lo, hi):
            by_symbol.setdefault(cell // m, 0)
            by_symbol[cell // m] |= 1 << (cell % m)
        for symbol in sorted(by_symbol):
            mask = by_symbol[symbol]
            if term.permanent:
                values = int(rng.integers(0, 1 << m)) & mask
                events.append(
                    FaultEvent(
                        t, kind, module, symbol, 0, values, mask=mask
                    )
                )
            else:
                events.append(
                    FaultEvent(t, kind, module, symbol, 0, 0, mask=mask)
                )
    elif term.kind is PatternKind.COL:
        span = term.size if term.size is not None else n
        span = min(span, n)
        bit = int(rng.integers(0, m))
        anchor = int(rng.integers(-(span - 1), n)) if span > 1 else int(
            rng.integers(0, n)
        )
        # A column-driver fault forces the whole plane to one level, so
        # the stuck value is drawn once for the event.
        value = int(rng.integers(0, 2))
        for symbol in range(max(anchor, 0), min(anchor + span, n)):
            if term.permanent:
                events.append(
                    FaultEvent(t, kind, module, symbol, bit, value)
                )
            else:
                events.append(FaultEvent(t, kind, module, symbol, bit))
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled pattern kind {term.kind}")
    return events


def expand_arrivals(
    rng: np.random.Generator,
    pattern: FaultPattern,
    times: Sequence[float],
    n: int,
    m: int,
    module: int = 0,
) -> List[FaultEvent]:
    """Expand pre-drawn arrival instants into concrete fault events.

    ``times`` must already be sorted ascending: events are expanded in
    time order so the generator's rng consumption (and therefore every
    downstream estimate) is a pure function of the seed.
    """
    if len(times) == 0:
        return []
    probs = pattern.probabilities
    term_idx = rng.choice(len(pattern.terms), size=len(times), p=probs)
    events: List[FaultEvent] = []
    for t, idx in zip(times, term_idx):
        events.extend(
            _expand_term(rng, pattern.terms[int(idx)], n, m, float(t), module)
        )
    return events


def sample_pattern_events(
    rng: np.random.Generator,
    pattern: Union[str, FaultPattern],
    seu_per_bit: float,
    n: int,
    m: int,
    t_end: float,
    module: int = 0,
    schedule: Union[str, RateSchedule, None] = None,
) -> List[FaultEvent]:
    """Correlated fault events over ``[0, t_end]`` for one module.

    Arrivals form a (possibly schedule-modulated) Poisson process at the
    i.i.d. model's total rate ``seu_per_bit * n * m``; each arrival is
    one shape drawn from the mixture.  A pure ``1BIT`` pattern with no
    schedule is distribution-identical to
    :func:`~repro.simulator.faults.sample_seu_events` — the analytic
    cross-validation anchor.
    """
    pattern = parse_pattern(pattern)
    schedule = parse_schedule(schedule)
    base_rate = seu_per_bit * n * m
    if base_rate <= 0 or t_end <= 0:
        return []
    expected = base_rate * (
        schedule.integral(t_end) if schedule is not None else t_end
    )
    if expected <= 0:
        return []
    count = int(rng.poisson(expected))
    if count == 0:
        return []
    if schedule is not None:
        times = schedule.sample_times(rng, t_end, count)
    else:
        times = np.sort(rng.uniform(0.0, t_end, size=count))
    return expand_arrivals(rng, pattern, times, n, m, module)
