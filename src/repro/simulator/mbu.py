"""Clustered-upset (MBU) injection for the bit-level simulator.

Physical counterpart of :mod:`repro.memory.mbu`: strikes are anchored
uniformly on the physical cell row, upset a contiguous cluster of cells,
and corrupt whichever bits of the target word the layout places under
the cluster.  Used to validate the multi-symbol-arrival chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..memory.mbu import ClusterDistribution, Layout
from ..rs import RSCode, RSDecodingError
from .montecarlo import FailureEstimate, wilson_interval
from .systems import ReadOutcome
from .word import MemoryWord


def _cell_map(
    n: int, m: int, layout: Layout, depth: int
) -> Dict[int, Tuple[int, int]]:
    """physical position -> (symbol, bit) for the target word."""
    mapping: Dict[int, Tuple[int, int]] = {}
    for logical in range(n * m):
        if layout is Layout.CONTIGUOUS:
            position = logical
            symbol, bit = logical // m, logical % m
        elif layout is Layout.BIT_INTERLEAVED:
            position = logical
            symbol, bit = logical % n, logical // n
        else:  # WORD_INTERLEAVED
            position = logical * depth
            symbol, bit = logical // m, logical % m
        mapping[position] = (symbol, bit)
    return mapping


def sample_mbu_strikes(
    rng: np.random.Generator,
    strike_rate_per_cell: float,
    n: int,
    m: int,
    layout: Layout,
    clusters: ClusterDistribution,
    t_end: float,
    depth: int = 4,
) -> List[Tuple[float, List[Tuple[int, int]]]]:
    """Sample strikes over ``[0, t_end]``; each is ``(time, affected cells)``.

    Anchor geometry matches
    :func:`repro.memory.mbu.symbol_multiplicity_rates` exactly: for a
    cluster of ``size`` cells, anchors range over every position whose
    span can intersect the word, each struck at the per-cell rate.
    """
    mapping = _cell_map(n, m, layout, depth)
    max_pos = max(mapping)
    strikes: List[Tuple[float, List[Tuple[int, int]]]] = []
    for size, prob in clusters.sizes.items():
        if prob == 0.0:
            continue
        anchors = max_pos + size  # anchor in [-(size-1), max_pos]
        rate = strike_rate_per_cell * prob * anchors
        count = rng.poisson(rate * t_end)
        for _ in range(count):
            t = float(rng.uniform(0.0, t_end))
            anchor = int(rng.integers(-(size - 1), max_pos + 1))
            cells = [
                mapping[p]
                for p in range(anchor, anchor + size)
                if p in mapping
            ]
            if cells:
                strikes.append((t, cells))
    strikes.sort(key=lambda s: s[0])
    return strikes


def simulate_mbu_read_unreliability(
    code: RSCode,
    layout: Layout,
    clusters: ClusterDistribution,
    strike_rate_per_cell: float,
    t_end: float,
    trials: int,
    rng: Optional[np.random.Generator] = None,
    depth: int = 4,
) -> FailureEstimate:
    """Monte-Carlo read unreliability under clustered upsets.

    Estimates what :class:`repro.memory.mbu.SimplexMBUModel` computes
    analytically (up to the chain's clean-landing thinning approximation
    and physically possible flip cancellations).
    """
    if rng is None:
        rng = np.random.default_rng()
    failures = 0
    for _ in range(trials):
        data = [int(v) for v in rng.integers(0, code.gf.order, size=code.k)]
        word = MemoryWord(code.encode(data), code.m)
        for _t, cells in sample_mbu_strikes(
            rng,
            strike_rate_per_cell,
            code.n,
            code.m,
            layout,
            clusters,
            t_end,
            depth,
        ):
            for symbol, bit in cells:
                word.flip_bit(symbol, bit)
        try:
            result = code.decode(word.read())
            outcome = (
                ReadOutcome.CORRECT
                if result.data == data
                else ReadOutcome.CORRUPTED
            )
        except RSDecodingError:
            outcome = ReadOutcome.UNREADABLE
        if outcome.is_failure:
            failures += 1
    low, high = wilson_interval(failures, trials)
    return FailureEstimate(failures / trials, trials, failures, low, high)
