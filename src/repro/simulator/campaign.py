"""Fault-injection campaign orchestration.

A *campaign* runs the codec-level Monte-Carlo estimator over a matrix of
configurations (arrangement x fault environment) with deterministic
per-cell seeding, collecting the estimates alongside the corresponding
Markov-model predictions.  This is the repeatable bulk-validation entry
point — ``benchmarks/bench_xval_montecarlo.py`` is one hand-rolled cell
of what this module automates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..memory import duplex_model, simplex_model
from ..memory.duplex import DuplexMarkovModel
from ..memory.mission import MissionProfile
from ..memory.rates import FaultRates
from ..memory.simplex import SimplexMarkovModel
from ..obs import trace
from ..perf import PerfCounters
from ..rs import RSCode
from ..rs.backends import ENGINE_CHOICES, canonical_engine, resolve_engine
from ..runtime import RuntimeConfig
from .montecarlo import (
    FailureEstimate,
    simulate_fail_probability,
    simulate_fail_probability_batched,
)
from .patterns import parse_pattern, parse_schedule


@dataclass(frozen=True)
class CampaignCell:
    """One configuration of the campaign matrix.

    ``pattern``/``schedule`` are canonical spec strings of
    :mod:`repro.simulator.patterns` (kept textual so cells stay plain
    JSON in fingerprints and manifests); ``None`` means the paper's
    i.i.d. constant-rate model.
    """

    arrangement: str
    seu_per_bit_day: float
    erasure_per_symbol_day: float
    scrub_period_seconds: Optional[float] = None
    pattern: Optional[str] = None
    schedule: Optional[str] = None

    def label(self) -> str:
        """Unambiguous cell label for journals, manifests, and summaries.

        Every field is always rendered (a zero rate is a real
        configuration, distinct from a different-rate cell), and a
        configured-but-zero scrub period (``tsc=0``) is distinguished
        from "no scrubbing" (``scrub_period_seconds=None``), which omits
        the field.  Truthiness tests here previously collapsed those
        cases into identical labels.
        """
        parts = [
            self.arrangement,
            f"seu={self.seu_per_bit_day:g}",
            f"perm={self.erasure_per_symbol_day:g}",
        ]
        if self.scrub_period_seconds is not None:
            parts.append(f"tsc={self.scrub_period_seconds:g}s")
        if self.pattern is not None:
            parts.append(f"pat={self.pattern}")
        if self.schedule is not None:
            parts.append(f"sched={self.schedule}")
        return " ".join(parts)


@dataclass(frozen=True)
class CampaignRow:
    """Result of one cell: model prediction next to the MC estimate.

    ``model_fail_probability`` is ``None`` for out-of-model cells —
    correlated patterns the paper's i.i.d. chains cannot predict.  Such
    cells degrade gracefully: the campaign still runs them, reports
    their robustness counters, and marks them consistent-by-default
    (there is no model claim to falsify).
    """

    cell: CampaignCell
    model_fail_probability: Optional[float]
    estimate: FailureEstimate

    @property
    def consistent(self) -> bool:
        """Model inside a 99.9% Wilson interval (simplex) or conservative
        upper bound respected (duplex, either-word rule).

        The wide interval keeps the per-cell false-alarm rate negligible
        even for quick low-trial campaigns; serious validation should
        raise ``trials`` rather than trust narrow intervals.  Cells with
        no model prediction are vacuously consistent.
        """
        from .montecarlo import wilson_interval

        if self.model_fail_probability is None:
            return True
        if self.cell.arrangement == "simplex":
            low, high = wilson_interval(
                self.estimate.failures, self.estimate.trials, z=3.29
            )
            return low <= self.model_fail_probability <= high
        low, high = wilson_interval(
            self.estimate.failures, self.estimate.trials, z=3.29
        )
        return low <= self.model_fail_probability or (
            self.estimate.probability <= self.model_fail_probability
        )


def cell_model_probability(
    cell: CampaignCell,
    n: int,
    k: int,
    m: int,
    t_end_hours: float,
) -> Optional[float]:
    """Analytic ``P_Fail(t_end)`` for one cell, or ``None`` if out of model.

    Three regimes:

    * no pattern/schedule — the paper's constant-rate chain;
    * i.i.d.-reducible pattern (see
      :attr:`~repro.simulator.patterns.FaultPattern.iid_reducible`),
      optionally scheduled — the pattern's law matches the i.i.d. model,
      so a constant-rate chain (unscheduled) or a
      :class:`~repro.memory.mission.MissionProfile` built phase-for-phase
      from the schedule (scheduled) predicts it exactly;
    * anything else — correlated physics outside the chains' state
      space: ``None``, the graceful-degradation contract.
    """
    pattern = None if cell.pattern is None else parse_pattern(cell.pattern)
    schedule = parse_schedule(cell.schedule)
    if pattern is not None and not pattern.iid_reducible:
        return None
    if schedule is None:
        factory = (
            simplex_model if cell.arrangement == "simplex" else duplex_model
        )
        model = factory(
            n,
            k,
            m=m,
            seu_per_bit_day=cell.seu_per_bit_day,
            erasure_per_symbol_day=cell.erasure_per_symbol_day,
            scrub_period_seconds=cell.scrub_period_seconds,
        )
        return float(model.fail_probability([t_end_hours])[0])
    base_rates = FaultRates.from_paper_units(
        seu_per_bit_day=cell.seu_per_bit_day,
        erasure_per_symbol_day=cell.erasure_per_symbol_day,
        scrub_period_seconds=cell.scrub_period_seconds,
    )
    model_cls = (
        SimplexMarkovModel
        if cell.arrangement == "simplex"
        else DuplexMarkovModel
    )
    profile = MissionProfile(
        model_cls, n, k, m, schedule.mission_phases(base_rates)
    )
    return float(profile.fail_probability([t_end_hours])[0])


#: Current fingerprint schema.  3 folded the adaptive-stopping rule in:
#: ``stop_rel_ci``/``min_trials``/``ci_method`` change the recorded
#: ``stopped_early`` prefix and hence the final estimate, so two runs
#: differing only in the stopping rule are *different campaigns* and
#: must not share a journal (or a cached result).
FINGERPRINT_SCHEMA = 3


def stopping_fingerprint(stop) -> Optional[Dict[str, object]]:
    """Canonical JSON form of a stopping rule (``None`` = full budget).

    Accepts a :class:`repro.stats.StoppingRule` (or anything with the
    same four attributes); every field that can move the stop index —
    and therefore the estimate — is included.
    """
    if stop is None:
        return None
    return {
        "rel_ci": float(stop.rel_ci),
        "min_trials": int(stop.min_trials),
        "method": str(stop.method),
        "confidence": float(stop.confidence),
    }


def campaign_fingerprint(
    cells: Sequence[CampaignCell],
    n: int,
    k: int,
    m: int,
    t_end_hours: float,
    trials: int,
    base_seed: int,
    engine: str,
    chunk_size: int,
    stop=None,
) -> Dict[str, object]:
    """Every parameter the campaign estimates depend on, as plain JSON.

    This is the identity a checkpoint journal is bound to — and, via
    :func:`fingerprint_digest`, the content address of the service-layer
    result cache: two campaigns with equal fingerprints produce
    bit-identical estimates, so their journaled chunks (and cached
    results) are interchangeable.  Worker count is deliberately absent —
    it cannot affect results.  The engine is recorded only as its
    result-relevant family (:func:`~repro.rs.backends.canonical_engine`):
    every batch backend (``scalar``/``numpy``/``compiled``/``auto``)
    produces bit-identical estimates, so they share one identity —
    ``"batch"``, the value pre-registry journals already carry — while
    the legacy ``reference`` loop keeps its historical ``"scalar"``
    value.  ``stop`` is the adaptive stopping rule (or ``None`` for a
    full-budget run); see :func:`stopping_fingerprint` for why it is
    part of the identity.
    """
    return {
        "schema": FINGERPRINT_SCHEMA,
        "n": n,
        "k": k,
        "m": m,
        "t_end_hours": t_end_hours,
        "trials": trials,
        "base_seed": base_seed,
        "engine": canonical_engine(engine),
        "chunk_size": chunk_size,
        "stopping": stopping_fingerprint(stop),
        "cells": [
            {
                "arrangement": cell.arrangement,
                "seu_per_bit_day": cell.seu_per_bit_day,
                "erasure_per_symbol_day": cell.erasure_per_symbol_day,
                "scrub_period_seconds": cell.scrub_period_seconds,
                "pattern": cell.pattern,
                "schedule": cell.schedule,
            }
            for cell in cells
        ],
    }


def upgrade_fingerprint(fingerprint: Dict[str, object]) -> Dict[str, object]:
    """Lift a legacy journal fingerprint to the current schema.

    Older schemas could only have been written by features that did not
    exist yet, so the migration defaults are exact, not guesses:

    * schema 1 (pre fault-physics) — every cell ran the i.i.d. model:
      ``pattern``/``schedule`` become ``None``;
    * schema 2 (pre stopping-rule identity) — the journal's *header*
      carries no stopping information, so it is treated as a full-budget
      run (``stopping: None``).  A schema-2 journal that was actually
      written under ``--stop-rel-ci`` is exactly the bug this migration
      closes: it now only resumes into a run with no stopping rule,
      which replays every journaled chunk and recomputes the rest —
      still bit-identical, never silently truncated.

    Unknown/newer schemas are returned unchanged (the strict equality
    check in ``ensure_header`` then refuses them).
    """
    schema = fingerprint.get("schema")
    if schema not in (1, 2):
        return fingerprint
    upgraded = dict(fingerprint)
    if schema == 1:
        upgraded["cells"] = [
            {**cell, "pattern": None, "schedule": None}
            for cell in upgraded.get("cells", [])
        ]
    upgraded["schema"] = FINGERPRINT_SCHEMA
    upgraded.setdefault("stopping", None)
    return upgraded


def canonical_fingerprint_json(fingerprint: Dict[str, object]) -> str:
    """The one canonical serialization shared by journals and the cache.

    Sorted keys, no whitespace — byte-identical for equal fingerprints,
    so the digest below is a true content address.
    """
    return json.dumps(
        fingerprint, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_digest(fingerprint: Dict[str, object]) -> str:
    """SHA-256 hex digest of the canonical fingerprint JSON.

    This is the content-address of the service result cache *and* the
    identity journals are bound to: one canonicalization, one key space.
    """
    return hashlib.sha256(
        canonical_fingerprint_json(fingerprint).encode("utf-8")
    ).hexdigest()


def run_campaign(
    cells: Sequence[CampaignCell],
    n: int = 18,
    k: int = 16,
    m: int = 8,
    t_end_hours: float = 48.0,
    trials: int = 400,
    base_seed: int = 2005,
    engine: str = "auto",
    workers: int = 1,
    chunk_size: int = 512,
    counters: Optional[PerfCounters] = None,
    runtime: Optional[RuntimeConfig] = None,
) -> List[CampaignRow]:
    """Run every cell with a deterministic per-cell seed.

    Seeding is positional (``base_seed + index``) so a campaign is exactly
    reproducible and individual cells can be re-run in isolation.

    ``engine`` selects the trial executor (see :mod:`repro.rs.backends`):

    * ``"auto"`` (default), ``"compiled"``, ``"numpy"`` (alias
      ``"batch"``), and ``"scalar"`` all run the *batch family* — fault
      events drawn in vectorized chunks, reads decoded in bulk through
      the named RS backend, chunks optionally fanned out over ``workers``
      processes.  All batch backends are bit-identical: the estimate is
      a deterministic function of ``(base_seed, trials, chunk_size)``
      only, never of the backend or ``workers``.  ``"auto"`` picks the
      fastest available backend (``compiled`` when its capability probe
      passes, else ``numpy`` — announced, never silent).
    * ``"reference"`` is the legacy one-trial-at-a-time loop
      (bit-for-bit identical to historic ``engine="scalar"`` campaigns
      for a given seed), kept as the trusted validation path.

    ``counters`` (batch family only) accumulates work and throughput
    across all cells.

    ``runtime`` (batch family only) threads the resilience layer
    through every cell: supervised retries, per-chunk timeouts, chaos
    injection, and — when ``runtime.journal`` is set — chunk-level
    checkpointing.  The journal is bound to this campaign's
    :func:`campaign_fingerprint`; resuming with different parameters
    raises :class:`~repro.runtime.CheckpointMismatchError`, and resuming
    with the same ones replays completed chunks for bit-identical
    results.
    """
    if not cells:
        raise ValueError("empty campaign")
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"engine must be one of {', '.join(ENGINE_CHOICES)}, "
            f"got {engine!r}"
        )
    # Resolve now: an unavailable compiled backend fails loudly here,
    # before any model solve or journal header is written.
    family, backend = resolve_engine(engine)
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if workers <= 0:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for cell in cells:
        if cell.arrangement not in ("simplex", "duplex"):
            raise ValueError(f"unknown arrangement {cell.arrangement!r}")
        # Fail fast on malformed specs — before any model solve or
        # journal header is written.
        if cell.pattern is not None:
            parse_pattern(cell.pattern)
        parse_schedule(cell.schedule)
    if runtime is not None and runtime.journal is not None:
        if family != "batch":
            raise ValueError(
                "checkpoint journaling requires a batch-family engine "
                "(auto/compiled/numpy/scalar); the 'reference' loop has "
                "no chunk structure to journal"
            )
        runtime.journal.ensure_header(
            campaign_fingerprint(
                cells,
                n,
                k,
                m,
                t_end_hours,
                trials,
                base_seed,
                engine,
                chunk_size,
                stop=runtime.stop,
            ),
            upgrade=upgrade_fingerprint,
        )
    code = RSCode(n, k, m=m)
    rows: List[CampaignRow] = []
    for idx, cell in enumerate(cells):
        with trace.span(
            "campaign_cell",
            cell=cell.label(),
            index=idx,
            engine=engine,
            backend=backend,
            trials=trials,
        ):
            with trace.span("campaign_model_solve", cell=cell.label()):
                p_model = cell_model_probability(cell, n, k, m, t_end_hours)
            scrub_period_hours = (
                None
                if cell.scrub_period_seconds is None
                else cell.scrub_period_seconds / 3600.0
            )
            if family == "batch":
                estimate = simulate_fail_probability_batched(
                    cell.arrangement,
                    code,
                    t_end_hours,
                    seu_per_bit=cell.seu_per_bit_day / 24.0,
                    erasure_per_symbol=cell.erasure_per_symbol_day / 24.0,
                    trials=trials,
                    seed=base_seed + idx,
                    scrub_period=scrub_period_hours,
                    scrub_exponential=True,
                    chunk_size=chunk_size,
                    workers=workers,
                    counters=counters,
                    runtime=runtime,
                    cell_key=f"{idx}:{cell.label()}",
                    pattern=cell.pattern,
                    schedule=cell.schedule,
                    backend=backend,
                )
            else:
                estimate = simulate_fail_probability(
                    cell.arrangement,
                    code,
                    t_end_hours,
                    seu_per_bit=cell.seu_per_bit_day / 24.0,
                    erasure_per_symbol=cell.erasure_per_symbol_day / 24.0,
                    trials=trials,
                    rng=np.random.default_rng(base_seed + idx),
                    scrub_period=scrub_period_hours,
                    scrub_exponential=True,
                    pattern=cell.pattern,
                    schedule=cell.schedule,
                )
            rows.append(CampaignRow(cell, p_model, estimate))
    return rows


def default_validation_campaign(
    seu_rates=(1e-3, 2e-3),
    perm_rates=(0.0, 1e-2),
) -> List[CampaignCell]:
    """The standard MC-visible validation matrix."""
    cells = []
    for arrangement in ("simplex", "duplex"):
        for seu in seu_rates:
            for perm in perm_rates:
                cells.append(
                    CampaignCell(
                        arrangement=arrangement,
                        seu_per_bit_day=seu,
                        erasure_per_symbol_day=perm,
                    )
                )
    return cells


def campaign_summary(rows: Sequence[CampaignRow]) -> Dict[str, Tuple[int, int]]:
    """``{arrangement: (consistent cells, total cells)}``."""
    out: Dict[str, Tuple[int, int]] = {}
    for row in rows:
        ok, total = out.get(row.cell.arrangement, (0, 0))
        out[row.cell.arrangement] = (ok + (1 if row.consistent else 0), total + 1)
    return out
