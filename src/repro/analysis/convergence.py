"""Numerical-confidence utilities: tolerance sweeps and MC planning.

Small tools behind the project's verification discipline, exposed for
users running their own studies:

* :func:`solver_agreement` — run a model through every transient solver
  and report the worst pairwise deviation (a one-call sanity check
  before trusting a new configuration);
* :func:`uniformization_tolerance_sweep` — how the answer moves as the
  series tolerance tightens (convergence evidence);
* :func:`trials_for_relative_width` — how many Monte-Carlo trials are
  needed to resolve a probability to a target relative CI width (plan
  fault-injection campaigns *before* burning CPU);
* :func:`scrub_grid_refinement` — deterministic-scrub solver vs a
  refined evaluation grid (the piecewise solver is exact in time, so
  this checks evaluation-point independence).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from ..memory.base import MemoryMarkovModel
from ..memory.scrubbing import deterministic_scrub_fail_probability


def solver_agreement(
    model: MemoryMarkovModel,
    times_hours: Sequence[float],
    methods: Sequence[str] = ("uniformization", "expm", "ode"),
) -> Dict[str, float]:
    """Worst absolute deviation of each solver from the method ensemble.

    Returns ``{method: max |p_method - p_median|}`` over the grid and all
    states; deviations above ~1e-8 deserve investigation.
    """
    solutions = {
        method: model.chain.transient(times_hours, method=method)
        for method in methods
    }
    stacked = np.stack(list(solutions.values()))
    median = np.median(stacked, axis=0)
    return {
        method: float(np.max(np.abs(solution - median)))
        for method, solution in solutions.items()
    }


def uniformization_tolerance_sweep(
    model: MemoryMarkovModel,
    t_hours: float,
    rtols: Sequence[float] = (1e-6, 1e-9, 1e-12, 1e-14),
) -> Dict[float, float]:
    """``P_fail(t)`` per series tolerance (converged when values agree)."""
    return {
        rtol: float(
            model.fail_probability([t_hours], method="uniformization", rtol=rtol)[0]
        )
        for rtol in rtols
    }


def trials_for_relative_width(
    probability: float, relative_width: float, z: float = 1.96
) -> int:
    """Monte-Carlo trials for a CI of ``±relative_width * p`` around ``p``.

    Normal-approximation planning bound: ``n = z² (1-p) / (p w²)``.
    The practical message is the 1/p scaling — resolving the paper's
    1e-6-scale BERs by sampling needs ~1e10 trials, which is *why* this
    package solves chains instead (see DESIGN.md).
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must be in (0, 1)")
    if relative_width <= 0:
        raise ValueError("relative width must be positive")
    n = z * z * (1.0 - probability) / (probability * relative_width**2)
    return max(1, math.ceil(n))


def scrub_grid_refinement(
    model: MemoryMarkovModel,
    t_hours: float,
    scrub_period_hours: float,
    factors: Sequence[int] = (1, 4, 16),
) -> Dict[int, float]:
    """``P_fail(t)`` when evaluated through successively finer grids.

    The piecewise solver propagates exactly between scrubs, so the values
    must agree to solver precision — this guards the epoch bookkeeping.
    """
    out: Dict[int, float] = {}
    for factor in factors:
        grid = np.linspace(0.0, t_hours, 2 * factor + 1)
        pf = deterministic_scrub_fail_probability(
            model, grid, scrub_period_hours
        )
        out[factor] = float(pf[-1])
    return out
