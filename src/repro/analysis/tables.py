"""Plain-text rendering of BER series and cost tables.

The paper reports its evaluation as log-scale BER plots; the benchmark
harness regenerates each one as an ASCII table (time column + one column
per swept parameter), which is what lands in EXPERIMENTS.md and on stdout
when a bench runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..memory.ber import BERCurve
from ..rs.complexity import ArrangementCost


def format_ber(value: float) -> str:
    """Scientific notation tuned for values spanning 1e-200 .. 1."""
    if value == 0.0:
        return "0"
    return f"{value:.3e}"


def render_ber_table(
    curves: Sequence[BERCurve],
    time_label: str = "hours",
    time_scale: float = 1.0,
    max_rows: int = 13,
) -> str:
    """Render BER curves as one table: a time column, one column per curve.

    ``time_scale`` divides the hour-based grid for display (e.g. 730 to
    show months).  Rows are decimated evenly down to ``max_rows``.
    """
    if not curves:
        return "(no curves)"
    grid = curves[0].times_hours
    for c in curves[1:]:
        if len(c.times_hours) != len(grid):
            raise ValueError("curves must share a time grid")
    indices = _decimate(len(grid), max_rows)
    header = [time_label] + [c.label for c in curves]
    rows: List[List[str]] = []
    for i in indices:
        row = [f"{grid[i] / time_scale:.1f}"]
        row.extend(format_ber(float(c.ber[i])) for c in curves)
        rows.append(row)
    return _render(header, rows)


def render_cost_table(costs: Iterable[ArrangementCost]) -> str:
    """Render the Section 6 decoder complexity comparison."""
    header = ["arrangement", "code", "decoders", "Td (cycles)", "area (gates)"]
    rows = [
        [
            c.name,
            f"RS({c.n},{c.k})",
            str(c.num_decoders),
            str(c.decode_cycles),
            f"{c.area_gates:.0f}",
        ]
        for c in costs
    ]
    return _render(header, rows)


def _decimate(length: int, max_rows: int) -> List[int]:
    if length <= max_rows:
        return list(range(length))
    step = (length - 1) / (max_rows - 1)
    return sorted({round(i * step) for i in range(max_rows)})


def _render(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
