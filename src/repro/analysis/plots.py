"""ASCII log-scale plots for terminal-only environments.

The paper's evaluation is six log-BER plots; this renderer reproduces
them as text so the bench harness and CLI can show *shape* (crossings,
slopes, flattening under scrubbing) without a plotting stack.  Values
spanning 1e-200..1 are handled by plotting log10(BER) on the y axis.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..memory.ber import BERCurve

_MARKERS = "ox+*#@%&"


def ascii_ber_plot(
    curves: Sequence[BERCurve],
    width: int = 64,
    height: int = 18,
    time_label: str = "hours",
    time_scale: float = 1.0,
) -> str:
    """Render BER curves as an ASCII log-plot.

    Each curve gets a marker from ``o x + * …``; zero values (BER exactly
    0, e.g. at t = 0) are skipped since log10 is undefined there.
    """
    if not curves:
        return "(no curves)"
    if width < 16 or height < 4:
        raise ValueError("plot too small to be legible")

    points: List[tuple[float, float, int]] = []  # (t, log10 ber, curve idx)
    for idx, curve in enumerate(curves):
        for t, value in zip(curve.times_hours, curve.ber):
            if value > 0.0:
                points.append((float(t), math.log10(float(value)), idx))
    if not points:
        return "(all values are zero)"

    t_min = min(p[0] for p in points)
    t_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    if t_max == t_min:
        t_max = t_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for t, y, idx in points:
        col = round((t - t_min) / (t_max - t_min) * (width - 1))
        row = round((y_max - y) / (y_max - y_min) * (height - 1))
        grid[row][col] = _MARKERS[idx % len(_MARKERS)]

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"1e{y_max:+.0f} "
        elif i == height - 1:
            label = f"1e{y_min:+.0f} "
        else:
            label = " " * 7
        lines.append(f"{label:>8}|{''.join(row)}")
    axis = " " * 8 + "+" + "-" * width
    lines.append(axis)
    left = f"{t_min / time_scale:.0f}"
    right = f"{t_max / time_scale:.0f} {time_label}"
    pad = width - len(left) - len(right)
    lines.append(" " * 9 + left + " " * max(1, pad) + right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {c.label}" for i, c in enumerate(curves)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
