"""Parameter-sweep helpers for design studies.

Utilities the examples and ablation benches share: sweep a model factory
over a parameter, find where a BER curve crosses a budget, and search the
largest scrubbing period meeting a BER target (the design question behind
the paper's Fig. 7 discussion).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..memory import BERCurve, MemoryMarkovModel, ber_curve, duplex_model


def sweep_parameter(
    factory: Callable[[float], MemoryMarkovModel],
    values: Sequence[float],
    times_hours: Sequence[float],
    method: str = "auto",
    label_fn: Callable[[float], str] | None = None,
) -> List[BERCurve]:
    """Evaluate BER(t) for a model built at each parameter value."""
    if label_fn is None:
        label_fn = lambda v: f"{v:.3E}"  # noqa: E731 - tiny adapter
    return [
        ber_curve(factory(v), times_hours, method=method, label=label_fn(v))
        for v in values
    ]


def time_to_ber_budget(curve: BERCurve, budget: float) -> float:
    """First grid time (hours) at which BER exceeds ``budget``.

    Returns ``inf`` when the curve stays within budget — useful for
    "how long can data sit in this memory" sizing questions.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    over = np.nonzero(curve.ber > budget)[0]
    if len(over) == 0:
        return float("inf")
    return float(curve.times_hours[over[0]])


def max_scrub_period_for_budget(
    n: int,
    k: int,
    seu_per_bit_day: float,
    budget: float,
    horizon_hours: float,
    m: int = 8,
    periods_seconds: Sequence[float] = tuple(
        60.0 * step for step in (5, 10, 15, 20, 30, 45, 60, 90, 120, 180, 240)
    ),
    fail_rule: str = "either",
) -> float:
    """Largest swept scrubbing period keeping duplex BER within budget.

    Scans the candidate periods from longest to shortest and returns the
    first that meets the budget at the horizon; raises if none does.
    This answers the paper's Fig. 7 design question quantitatively.
    """
    for period in sorted(periods_seconds, reverse=True):
        model = duplex_model(
            n,
            k,
            m=m,
            seu_per_bit_day=seu_per_bit_day,
            scrub_period_seconds=period,
            fail_rule=fail_rule,
        )
        final = ber_curve(model, [horizon_hours], method="uniformization").final
        if final <= budget:
            return period
    raise ValueError(
        f"no swept scrubbing period meets BER budget {budget:g} "
        f"at {horizon_hours} h"
    )


def feasible_scrub_window(
    n: int,
    k: int,
    num_words: int,
    seu_per_bit_day: float,
    ber_budget: float,
    availability_target: float,
    horizon_hours: float,
    m: int = 8,
    clock_hz: float = 50e6,
) -> tuple[float, float]:
    """The scrubbing periods satisfying *both* constraints of the design.

    Fig. 7 pushes Tsc *down* (BER budget); the Section 2 availability cost
    pushes it *up*.  Returns ``(min_period_s, max_period_s)`` — the
    feasible window — or raises ValueError when the constraints conflict
    (the memory is too large or the budget too tight for this controller).
    """
    from ..memory.overhead import min_scrub_period_for_availability

    max_period = max_scrub_period_for_budget(
        n,
        k,
        seu_per_bit_day=seu_per_bit_day,
        budget=ber_budget,
        horizon_hours=horizon_hours,
        m=m,
    )
    min_period = min_scrub_period_for_availability(
        n,
        k,
        num_words=num_words,
        availability_target=availability_target,
        m=m,
        clock_hz=clock_hz,
    )
    if min_period > max_period:
        raise ValueError(
            f"infeasible: availability needs Tsc >= {min_period:.0f}s but "
            f"the BER budget needs Tsc <= {max_period:.0f}s"
        )
    return (min_period, max_period)
