"""Named, runnable reproductions of every evaluation artifact in the paper.

Each ``fig*``/``table*`` function builds exactly the configuration the
paper evaluates (Section 6) and returns an :class:`ExperimentResult`
bundling the BER series with machine-checkable *expectations* — the
qualitative claims the paper makes about that artifact (orderings,
thresholds, monotonicities).  The benchmark harness regenerates the
series, the tests assert the expectations, and EXPERIMENTS.md records the
measured values next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..memory import (
    HOURS_PER_MONTH,
    BERCurve,
    ber_curve,
    duplex_model,
    simplex_model,
)
from ..rs import paper_comparison

#: SEU rates swept in Figs. 5-6 (errors/bit/day, paper Section 6).
SEU_RATES_PER_BIT_DAY = (7.3e-7, 3.6e-6, 1.7e-5)

#: Worst-case SEU rate used for the scrubbing study (Fig. 7).
WORST_CASE_SEU_PER_BIT_DAY = 1.7e-5

#: Scrubbing periods swept in Fig. 7 (seconds).
SCRUB_PERIODS_SECONDS = (900.0, 1200.0, 1800.0, 3600.0)

#: Permanent-fault rates swept in Figs. 8-10 (per symbol per day).
PERMANENT_RATES_PER_SYMBOL_DAY = tuple(10.0**-e for e in range(4, 11))

#: Storage horizon for the transient studies (Tst = 48 h).
TRANSIENT_HORIZON_HOURS = 48.0

#: Storage horizon for the permanent-fault studies (24 months).
PERMANENT_HORIZON_MONTHS = 24.0


@dataclass(frozen=True)
class Expectation:
    """A machine-checkable qualitative claim from the paper."""

    description: str
    check: Callable[["ExperimentResult"], bool]

    def holds(self, result: "ExperimentResult") -> bool:
        return bool(self.check(result))


@dataclass
class ExperimentResult:
    """Output of one reproduced experiment."""

    experiment_id: str
    title: str
    curves: List[BERCurve]
    expectations: List[Expectation] = field(default_factory=list)
    notes: str = ""

    def curve(self, label: str) -> BERCurve:
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(f"no curve labelled {label!r}")

    def failed_expectations(self) -> List[str]:
        return [e.description for e in self.expectations if not e.holds(self)]

    def all_expectations_hold(self) -> bool:
        return not self.failed_expectations()

    def final_ber_map(self) -> Dict[str, float]:
        """``{curve label: BER at the last grid point}``.

        The horizon BER of every curve is the quantity the paper plots,
        and it is solver-grid-invariant (the last grid point is always
        the horizon) — which makes this map the anchor for the
        golden-vector regression suite (``tests/test_golden_ber.py``).
        """
        return {c.label: float(c.final) for c in self.curves}


def _transient_grid(points: int = 25) -> np.ndarray:
    return np.linspace(0.0, TRANSIENT_HORIZON_HOURS, points)


def _permanent_grid(months: float, points: int = 25) -> np.ndarray:
    return np.linspace(0.0, months * HOURS_PER_MONTH, points)


def _monotone_in_rate(result: ExperimentResult) -> bool:
    finals = [c.final for c in result.curves]
    return all(a <= b for a, b in zip(finals, finals[1:]))


# --------------------------------------------------------------------------
# Figures 5-6: transient-only BER of simplex and duplex RS(18,16)
# --------------------------------------------------------------------------


def fig5_simplex_seu(points: int = 25, method: str = "auto") -> ExperimentResult:
    """Fig. 5 — BER of simplex RS(18,16) under three SEU rates, no scrub."""
    times = _transient_grid(points)
    curves = [
        ber_curve(
            simplex_model(18, 16, seu_per_bit_day=lam),
            times,
            method=method,
            label=f"{lam:.1E}",
        )
        for lam in SEU_RATES_PER_BIT_DAY
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="BER of Simplex RS(18,16) under different SEU rates",
        curves=curves,
        expectations=[
            Expectation("BER increases with the SEU rate", _monotone_in_rate),
            Expectation(
                "each BER series is nondecreasing in time (no scrubbing)",
                lambda r: all(np.all(np.diff(c.ber) >= 0) for c in r.curves),
            ),
            Expectation(
                "48 h BER stays within the paper's plotted decade range "
                "(1e-12 .. 1e-4)",
                lambda r: all(1e-12 < c.final < 1e-4 for c in r.curves),
            ),
        ],
    )


def fig6_duplex_seu(points: int = 25, method: str = "auto") -> ExperimentResult:
    """Fig. 6 — BER of duplex RS(18,16) under the same SEU sweep."""
    times = _transient_grid(points)
    curves = [
        ber_curve(
            duplex_model(18, 16, seu_per_bit_day=lam),
            times,
            method=method,
            label=f"{lam:.1E}",
        )
        for lam in SEU_RATES_PER_BIT_DAY
    ]

    def _same_range_as_simplex(result: ExperimentResult) -> bool:
        simplex = fig5_simplex_seu(points=3, method="auto")
        for lam, dup in zip(SEU_RATES_PER_BIT_DAY, result.curves):
            simp = simplex.curve(f"{lam:.1E}").final
            if not 0.1 < dup.final / simp < 10.0:
                return False
        return True

    return ExperimentResult(
        experiment_id="fig6",
        title="BER of Duplex RS(18,16) under different SEU rates",
        curves=curves,
        expectations=[
            Expectation("BER increases with the SEU rate", _monotone_in_rate),
            Expectation(
                "duplex BER is in the same range as simplex under "
                "transients only (paper Section 6)",
                _same_range_as_simplex,
            ),
        ],
    )


# --------------------------------------------------------------------------
# Figure 7: duplex scrubbing-period sweep at the worst-case SEU rate
# --------------------------------------------------------------------------


def fig7_duplex_scrubbing(points: int = 25) -> ExperimentResult:
    """Fig. 7 — duplex RS(18,16), λ = 1.7e-5/bit/day, Tsc swept."""
    times = _transient_grid(points)
    curves = [
        ber_curve(
            duplex_model(
                18,
                16,
                seu_per_bit_day=WORST_CASE_SEU_PER_BIT_DAY,
                scrub_period_seconds=tsc,
            ),
            times,
            method="uniformization",
            label=f"{int(tsc)} s",
        )
        for tsc in SCRUB_PERIODS_SECONDS
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="BER of Duplex RS(18,16) with different Tsc",
        curves=curves,
        expectations=[
            Expectation(
                "BER increases with the scrubbing period",
                _monotone_in_rate,
            ),
            Expectation(
                "scrubbing at least once per hour keeps BER below 1e-6 "
                "(the paper's headline claim)",
                lambda r: all(c.final < 1e-6 for c in r.curves),
            ),
            Expectation(
                "scrubbing beats the unscrubbed duplex at 48 h",
                lambda r: max(c.final for c in r.curves)
                < ber_curve(
                    duplex_model(
                        18, 16, seu_per_bit_day=WORST_CASE_SEU_PER_BIT_DAY
                    ),
                    [TRANSIENT_HORIZON_HOURS],
                ).final,
            ),
        ],
    )


# --------------------------------------------------------------------------
# Figures 8-10: permanent-fault sweeps
# --------------------------------------------------------------------------


def _permanent_experiment(
    experiment_id: str,
    title: str,
    arrangement: str,
    n: int,
    k: int,
    months: float,
    points: int,
) -> ExperimentResult:
    times = _permanent_grid(months, points)
    factory = simplex_model if arrangement == "simplex" else duplex_model
    curves = [
        ber_curve(
            factory(n, k, erasure_per_symbol_day=rate),
            times,
            method="analytic",
            label=f"{rate:.0E}",
        )
        for rate in PERMANENT_RATES_PER_SYMBOL_DAY
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        curves=curves,
        expectations=[
            Expectation(
                "BER decreases as the permanent fault rate decreases",
                lambda r: all(
                    a.final >= b.final for a, b in zip(r.curves, r.curves[1:])
                ),
            ),
            Expectation(
                "each BER series is nondecreasing in time",
                lambda r: all(np.all(np.diff(c.ber) >= -1e-300) for c in r.curves),
            ),
        ],
    )


def fig8_simplex_permanent(points: int = 25) -> ExperimentResult:
    """Fig. 8 — simplex RS(18,16), permanent-fault-rate sweep, 24 months."""
    return _permanent_experiment(
        "fig8",
        "BER of Simplex RS(18,16) varying permanent fault rate",
        "simplex",
        18,
        16,
        PERMANENT_HORIZON_MONTHS,
        points,
    )


def fig9_duplex_permanent(points: int = 25) -> ExperimentResult:
    """Fig. 9 — duplex RS(18,16), same sweep, 25 months."""
    return _permanent_experiment(
        "fig9",
        "BER of Duplex RS(18,16) varying permanent fault rate",
        "duplex",
        18,
        16,
        25.0,
        points,
    )


def fig10_rs3616_permanent(points: int = 25) -> ExperimentResult:
    """Fig. 10 — simplex RS(36,16), same sweep, 24 months."""
    return _permanent_experiment(
        "fig10",
        "BER of Simplex RS(36,16) varying permanent fault rate",
        "simplex",
        36,
        16,
        PERMANENT_HORIZON_MONTHS,
        points,
    )


def permanent_fault_ordering(
    rate_per_symbol_day: float = 1e-6, months: float = 24.0
) -> Dict[str, float]:
    """The Section 6 cross-figure comparison at one rate.

    Returns the 24-month BER of the three arrangements; the paper's claim
    is the strict ordering simplex RS(18,16) > duplex RS(18,16) > simplex
    RS(36,16).
    """
    t = [months * HOURS_PER_MONTH]
    return {
        "simplex RS(18,16)": ber_curve(
            simplex_model(18, 16, erasure_per_symbol_day=rate_per_symbol_day),
            t,
            method="analytic",
        ).final,
        "duplex RS(18,16)": ber_curve(
            duplex_model(18, 16, erasure_per_symbol_day=rate_per_symbol_day),
            t,
            method="analytic",
        ).final,
        "simplex RS(36,16)": ber_curve(
            simplex_model(36, 16, erasure_per_symbol_day=rate_per_symbol_day),
            t,
            method="analytic",
        ).final,
    }


# --------------------------------------------------------------------------
# Section 6 decoder complexity table
# --------------------------------------------------------------------------


def table_decoder_complexity(m: int = 8):
    """Paper Section 6: Td and area of the three arrangements.

    The paper's arithmetic: Td(RS(36,16)) = 3*36 + 10*20 = 308 cycles;
    Td(RS(18,16)) = 3*18 + 10*2 = 74 cycles (a >4x latency ratio), while
    one RS(36,16) decoder outweighs two RS(18,16) decoders in gates.
    """
    return paper_comparison(m=m)


ALL_FIGURES: Dict[str, Callable[..., ExperimentResult]] = {
    "fig5": fig5_simplex_seu,
    "fig6": fig6_duplex_seu,
    "fig7": fig7_duplex_scrubbing,
    "fig8": fig8_simplex_permanent,
    "fig9": fig9_duplex_permanent,
    "fig10": fig10_rs3616_permanent,
}


def run_all(points: int = 25) -> List[ExperimentResult]:
    """Run every figure reproduction (used by the quickstart example)."""
    return [fn(points=points) for fn in ALL_FIGURES.values()]
