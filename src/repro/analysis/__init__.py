"""Experiment registry, sweeps and table rendering.

Public surface:

* :mod:`~repro.analysis.experiments` — one runnable function per paper
  figure/table, with machine-checkable expectations.
* :mod:`~repro.analysis.sweep` — parameter sweeps and design-question
  helpers.
* :mod:`~repro.analysis.tables` — ASCII rendering for the bench harness.
"""

from .experiments import (
    ALL_FIGURES,
    PERMANENT_RATES_PER_SYMBOL_DAY,
    SCRUB_PERIODS_SECONDS,
    SEU_RATES_PER_BIT_DAY,
    WORST_CASE_SEU_PER_BIT_DAY,
    Expectation,
    ExperimentResult,
    fig5_simplex_seu,
    fig6_duplex_seu,
    fig7_duplex_scrubbing,
    fig8_simplex_permanent,
    fig9_duplex_permanent,
    fig10_rs3616_permanent,
    permanent_fault_ordering,
    run_all,
    table_decoder_complexity,
)
from .convergence import (
    scrub_grid_refinement,
    solver_agreement,
    trials_for_relative_width,
    uniformization_tolerance_sweep,
)
from .design_space import (
    DesignPoint,
    cheapest_meeting_budget,
    enumerate_design_space,
    pareto_front,
)
from .export import curves_to_csv, experiment_to_csv, load_csv
from .plots import ascii_ber_plot
from .report import generate_report, write_report
from .scenario import (
    ScenarioResult,
    run_scenario,
    run_scenario_file,
    run_scenario_suite,
    validate_scenario,
)
from .sensitivity import (
    Sensitivity,
    elasticity,
    memory_system_sensitivities,
)
from .sweep import (
    feasible_scrub_window,
    max_scrub_period_for_budget,
    sweep_parameter,
    time_to_ber_budget,
)
from .tables import format_ber, render_ber_table, render_cost_table

__all__ = [
    "ALL_FIGURES",
    "Expectation",
    "ExperimentResult",
    "SEU_RATES_PER_BIT_DAY",
    "WORST_CASE_SEU_PER_BIT_DAY",
    "SCRUB_PERIODS_SECONDS",
    "PERMANENT_RATES_PER_SYMBOL_DAY",
    "fig5_simplex_seu",
    "fig6_duplex_seu",
    "fig7_duplex_scrubbing",
    "fig8_simplex_permanent",
    "fig9_duplex_permanent",
    "fig10_rs3616_permanent",
    "permanent_fault_ordering",
    "table_decoder_complexity",
    "run_all",
    "sweep_parameter",
    "time_to_ber_budget",
    "max_scrub_period_for_budget",
    "feasible_scrub_window",
    "format_ber",
    "render_ber_table",
    "render_cost_table",
    "curves_to_csv",
    "experiment_to_csv",
    "load_csv",
    "Sensitivity",
    "elasticity",
    "memory_system_sensitivities",
    "generate_report",
    "write_report",
    "ascii_ber_plot",
    "DesignPoint",
    "enumerate_design_space",
    "pareto_front",
    "cheapest_meeting_budget",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_file",
    "run_scenario_suite",
    "validate_scenario",
    "solver_agreement",
    "uniformization_tolerance_sweep",
    "trials_for_relative_width",
    "scrub_grid_refinement",
]
