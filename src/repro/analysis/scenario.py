"""Config-driven scenario runner.

Downstream users rarely want to write orchestration code for every
what-if; a *scenario* is a JSON-serializable description of one memory
configuration plus an evaluation request, runnable from Python or the
CLI (``python -m repro scenario my.json``).

Schema (all rates in the paper's units)::

    {
      "name": "leo-duplex",                # optional label
      "arrangement": "duplex",             # simplex | duplex
      "n": 18, "k": 16, "m": 8,
      "seu_per_bit_day": 1.7e-5,
      "erasure_per_symbol_day": 0.0,
      "scrub_period_seconds": 3600,        # optional
      "fail_rule": "either",               # duplex only, optional
      "horizon_hours": 48.0,
      "points": 13,                        # grid size, optional
      "ber_budget": 1e-6                   # optional: adds a pass/fail check
    }

:func:`run_scenario` returns a :class:`ScenarioResult` carrying the BER
curve, the summary scalars, and the budget verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from ..memory import BERCurve, ber_curve, duplex_model, simplex_model

_REQUIRED_KEYS = ("arrangement", "n", "k", "horizon_hours")
_ALLOWED_KEYS = {
    "name",
    "arrangement",
    "n",
    "k",
    "m",
    "seu_per_bit_day",
    "erasure_per_symbol_day",
    "scrub_period_seconds",
    "fail_rule",
    "horizon_hours",
    "points",
    "ber_budget",
}


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario evaluation."""

    name: str
    curve: BERCurve
    final_ber: float
    mttf_hours: float
    budget: Optional[float] = None
    meets_budget: Optional[bool] = None
    config: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"scenario : {self.name}",
            f"BER(final): {self.final_ber:.6e}",
            f"MTTF      : {self.mttf_hours:.6g} h",
        ]
        if self.budget is not None:
            verdict = "MEETS" if self.meets_budget else "MISSES"
            lines.append(f"budget    : {verdict} {self.budget:g}")
        return "\n".join(lines)


def validate_scenario(config: Dict[str, Any]) -> Dict[str, Any]:
    """Check keys/types and fill defaults; returns a normalized copy."""
    unknown = set(config) - _ALLOWED_KEYS
    if unknown:
        raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
    missing = [key for key in _REQUIRED_KEYS if key not in config]
    if missing:
        raise ValueError(f"scenario missing required keys: {missing}")
    normalized = dict(config)
    normalized.setdefault("name", "scenario")
    normalized.setdefault("m", 8)
    normalized.setdefault("seu_per_bit_day", 0.0)
    normalized.setdefault("erasure_per_symbol_day", 0.0)
    normalized.setdefault("scrub_period_seconds", None)
    normalized.setdefault("fail_rule", "either")
    normalized.setdefault("points", 13)
    if normalized["arrangement"] not in ("simplex", "duplex"):
        raise ValueError(
            f"arrangement must be simplex or duplex, "
            f"got {normalized['arrangement']!r}"
        )
    if normalized["horizon_hours"] <= 0:
        raise ValueError("horizon_hours must be positive")
    if normalized["points"] < 2:
        raise ValueError("points must be >= 2")
    return normalized


def run_scenario(config: Dict[str, Any]) -> ScenarioResult:
    """Validate and evaluate one scenario description."""
    cfg = validate_scenario(config)
    if cfg["arrangement"] == "simplex":
        model = simplex_model(
            cfg["n"],
            cfg["k"],
            m=cfg["m"],
            seu_per_bit_day=cfg["seu_per_bit_day"],
            erasure_per_symbol_day=cfg["erasure_per_symbol_day"],
            scrub_period_seconds=cfg["scrub_period_seconds"],
        )
    else:
        model = duplex_model(
            cfg["n"],
            cfg["k"],
            m=cfg["m"],
            seu_per_bit_day=cfg["seu_per_bit_day"],
            erasure_per_symbol_day=cfg["erasure_per_symbol_day"],
            scrub_period_seconds=cfg["scrub_period_seconds"],
            fail_rule=cfg["fail_rule"],
        )
    times = np.linspace(0.0, cfg["horizon_hours"], cfg["points"])
    curve = ber_curve(model, times, label=cfg["name"])
    budget = cfg.get("ber_budget")
    return ScenarioResult(
        name=cfg["name"],
        curve=curve,
        final_ber=curve.final,
        mttf_hours=model.mean_time_to_failure(),
        budget=budget,
        meets_budget=None if budget is None else bool(curve.final <= budget),
        config=cfg,
    )


def run_scenario_file(path: str | Path) -> ScenarioResult:
    """Load a scenario (or the first of a list) from a JSON file and run it."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, list):
        raise ValueError(
            "file contains a scenario list; use run_scenario_suite"
        )
    return run_scenario(data)


def run_scenario_suite(path: str | Path) -> list[ScenarioResult]:
    """Run every scenario in a JSON list file."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        data = [data]
    return [run_scenario(cfg) for cfg in data]
