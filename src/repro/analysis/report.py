"""Self-contained markdown reproduction report.

``python -m repro report`` regenerates every paper artifact and emits a
single markdown document — tables, expectation status, complexity
comparison and the cross-arrangement ordering — suitable for dropping
into a lab notebook or CI artifact store.
"""

from __future__ import annotations

import io
from pathlib import Path

from ..memory import HOURS_PER_MONTH
from .experiments import (
    ALL_FIGURES,
    permanent_fault_ordering,
    table_decoder_complexity,
)
from .plots import ascii_ber_plot
from .tables import render_ber_table, render_cost_table

_MONTHLY_FIGURES = ("fig8", "fig9", "fig10")


def generate_report(points: int = 13) -> str:
    """Build the full markdown report as a string."""
    out = io.StringIO()
    out.write(
        "# Reproduction report — RS-coded fault-tolerant memories "
        "(DATE 2005)\n\n"
        "Every figure and table of the paper's evaluation, regenerated "
        "from the\nanalytical models in this package.  Expectation lines "
        "are the paper's\nqualitative claims, checked mechanically.\n"
    )
    all_hold = True
    for fig_id, build in ALL_FIGURES.items():
        result = build(points=points)
        monthly = fig_id in _MONTHLY_FIGURES
        out.write(f"\n## {fig_id}: {result.title}\n\n```\n")
        out.write(
            render_ber_table(
                result.curves,
                time_label="months" if monthly else "hours",
                time_scale=HOURS_PER_MONTH if monthly else 1.0,
            )
        )
        out.write("\n\n")
        out.write(
            ascii_ber_plot(
                result.curves,
                time_label="months" if monthly else "hours",
                time_scale=HOURS_PER_MONTH if monthly else 1.0,
            )
        )
        out.write("\n```\n\n")
        failed = result.failed_expectations()
        if failed:
            all_hold = False
            for item in failed:
                out.write(f"* **FAILED**: {item}\n")
        else:
            for exp in result.expectations:
                out.write(f"* holds: {exp.description}\n")

    out.write("\n## Section 6: decoder complexity\n\n```\n")
    out.write(render_cost_table(table_decoder_complexity()))
    out.write("\n```\n")

    out.write(
        "\n## Section 6: permanent-fault comparison "
        "(1e-6 /symbol/day, 24 months)\n\n"
    )
    for name, ber in permanent_fault_ordering(1e-6).items():
        out.write(f"* {name}: BER = {ber:.3e}\n")

    out.write(
        f"\n---\n\n**Overall: "
        f"{'all paper expectations hold' if all_hold else 'SOME EXPECTATIONS FAILED'}.**\n"
    )
    return out.getvalue()


def write_report(path: str | Path, points: int = 13) -> Path:
    """Generate and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(points=points))
    return path
