"""Code/arrangement design-space exploration.

The paper compares three points — simplex RS(18,16), duplex RS(18,16),
simplex RS(36,16).  This module sweeps the whole family those points live
in (``RS(k + 2t, k)`` for t = 1..t_max, simplex and duplex) and scores
each candidate on the axes the paper argues about:

* BER at the storage horizon (reliability),
* decoder latency in cycles (access-time cost, Section 6),
* total decoder area in gate equivalents (hardware cost, Section 6),
* storage overhead (redundant symbols per data symbol, x2 for duplex).

:func:`pareto_front` reduces the sweep to the non-dominated designs —
the quantitative version of the paper's closing argument that duplex
RS(18,16) is a balanced point between the two simplex extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..memory import ber_curve, duplex_model, simplex_model
from ..rs.area import decoder_area
from ..rs.complexity import decoding_time_cycles


@dataclass(frozen=True)
class DesignPoint:
    """One candidate memory arrangement with its costs and BER."""

    name: str
    arrangement: str
    n: int
    k: int
    t: int
    ber: float
    decode_cycles: int
    area_gate_equivalents: float
    storage_overhead: float  # extra stored symbols per data symbol

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (ber, cycles, area, storage)."""
        mine = (
            self.ber,
            self.decode_cycles,
            self.area_gate_equivalents,
            self.storage_overhead,
        )
        theirs = (
            other.ber,
            other.decode_cycles,
            other.area_gate_equivalents,
            other.storage_overhead,
        )
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs


def enumerate_design_space(
    k: int,
    t_values: Sequence[int],
    horizon_hours: float,
    seu_per_bit_day: float = 0.0,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: float | None = None,
    m: int = 8,
) -> List[DesignPoint]:
    """Evaluate simplex and duplex RS(k + 2t, k) for every ``t``."""
    if not t_values:
        raise ValueError("no redundancy levels to evaluate")
    points: List[DesignPoint] = []
    for t in t_values:
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        n = k + 2 * t
        if n > (1 << m) - 1:
            raise ValueError(f"RS({n},{k}) does not fit GF(2^{m})")
        area_one = decoder_area(n, k, m).gate_equivalents
        cycles = decoding_time_cycles(n, k)
        for arrangement, factory, decoders, storage in (
            ("simplex", simplex_model, 1, (n - k) / k),
            ("duplex", duplex_model, 2, (2 * n - k) / k),
        ):
            model = factory(
                n,
                k,
                m=m,
                seu_per_bit_day=seu_per_bit_day,
                erasure_per_symbol_day=erasure_per_symbol_day,
                scrub_period_seconds=scrub_period_seconds,
            )
            ber = ber_curve(model, [horizon_hours]).final
            points.append(
                DesignPoint(
                    name=f"{arrangement} RS({n},{k})",
                    arrangement=arrangement,
                    n=n,
                    k=k,
                    t=t,
                    ber=ber,
                    decode_cycles=cycles,
                    area_gate_equivalents=decoders * area_one,
                    storage_overhead=storage,
                )
            )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by BER (best reliability first)."""
    front = [
        p
        for p in points
        if not any(other.dominates(p) for other in points)
    ]
    return sorted(front, key=lambda p: p.ber)


def cheapest_meeting_budget(
    points: Sequence[DesignPoint], ber_budget: float
) -> DesignPoint:
    """Least-area design meeting the BER budget; raises if none does."""
    candidates = [p for p in points if p.ber <= ber_budget]
    if not candidates:
        raise ValueError(f"no design meets BER budget {ber_budget:g}")
    return min(candidates, key=lambda p: p.area_gate_equivalents)
