"""CSV export of experiment results.

The paper presents its evaluation as plots; downstream users replotting
or post-processing want the series as data.  Each experiment exports to
one CSV with a time column and one column per curve — loadable by any
plotting tool without this package installed.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..memory.ber import BERCurve
from .experiments import ExperimentResult


def curves_to_csv(
    curves: Sequence[BERCurve],
    path: str | Path,
    time_label: str = "hours",
    time_scale: float = 1.0,
) -> Path:
    """Write BER curves sharing a grid to one CSV file.

    ``time_scale`` divides the hour-based grid for the written time
    column (e.g. 730 for months).  Returns the written path.
    """
    if not curves:
        raise ValueError("nothing to export")
    grid = curves[0].times_hours
    for c in curves[1:]:
        if len(c.times_hours) != len(grid):
            raise ValueError("curves must share a time grid")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([time_label] + [c.label for c in curves])
        for i, t in enumerate(grid):
            writer.writerow(
                [repr(float(t / time_scale))]
                + [repr(float(c.ber[i])) for c in curves]
            )
    return path


def experiment_to_csv(
    result: ExperimentResult,
    directory: str | Path,
    time_label: str = "hours",
    time_scale: float = 1.0,
) -> Path:
    """Write one experiment's curves to ``<directory>/<experiment_id>.csv``."""
    directory = Path(directory)
    return curves_to_csv(
        result.curves,
        directory / f"{result.experiment_id}.csv",
        time_label=time_label,
        time_scale=time_scale,
    )


def load_csv(path: str | Path) -> tuple[list[str], list[list[float]]]:
    """Read back a CSV written by :func:`curves_to_csv`.

    Returns ``(header, rows)`` with all values parsed as floats —
    round-trip fidelity is exact because values are written with repr.
    """
    with Path(path).open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        rows = [[float(cell) for cell in row] for row in reader]
    return header, rows
