"""Sensitivity analysis: which knob moves the BER most?

Reliability targets are negotiated against uncertain environments — the
paper itself sweeps λ over a factor of 23 and λe over six decades.  This
module quantifies local sensitivity as *elasticities*

    S_x = d log BER / d log x

via central finite differences in the log domain, so values read as
"percent BER change per percent parameter change".  An elasticity near
2 for λ on an RS(18,16) simplex (two random errors kill a t = 1 code)
is the kind of structural fact these numbers surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..memory import duplex_model, simplex_model
from ..memory.base import MemoryMarkovModel


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of BER with respect to one parameter."""

    parameter: str
    base_value: float
    base_ber: float
    elasticity: float


def elasticity(
    build: Callable[[float], MemoryMarkovModel],
    base_value: float,
    t_hours: float,
    rel_step: float = 0.05,
    method: str = "uniformization",
) -> float:
    """``d log BER / d log x`` at ``x = base_value`` by central differences."""
    if base_value <= 0:
        raise ValueError("elasticity needs a positive base value")
    if not 0 < rel_step < 1:
        raise ValueError("rel_step must be in (0, 1)")
    import math

    lo = build(base_value * (1 - rel_step))
    hi = build(base_value * (1 + rel_step))
    ber_lo = float(lo.ber([t_hours], method=method)[0])
    ber_hi = float(hi.ber([t_hours], method=method)[0])
    if ber_lo <= 0 or ber_hi <= 0:
        raise ValueError(
            "BER is zero at the evaluation point; elasticity undefined"
        )
    dlog_ber = math.log(ber_hi) - math.log(ber_lo)
    dlog_x = math.log1p(rel_step) - math.log1p(-rel_step)
    return dlog_ber / dlog_x


def memory_system_sensitivities(
    arrangement: str,
    n: int,
    k: int,
    t_hours: float,
    seu_per_bit_day: float,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: Optional[float] = None,
    m: int = 8,
) -> List[Sensitivity]:
    """Elasticities of BER w.r.t. every active rate of a configuration.

    Parameters with zero base value are skipped (no meaningful local
    log-derivative).  The scrubbing period's elasticity is reported with
    respect to ``Tsc`` itself (positive: longer period, more BER).
    """
    factory = simplex_model if arrangement == "simplex" else duplex_model
    if arrangement not in ("simplex", "duplex"):
        raise ValueError(f"unknown arrangement {arrangement!r}")

    def base_model():
        return factory(
            n,
            k,
            m=m,
            seu_per_bit_day=seu_per_bit_day,
            erasure_per_symbol_day=erasure_per_symbol_day,
            scrub_period_seconds=scrub_period_seconds,
        )

    base_ber = float(base_model().ber([t_hours])[0])
    results: List[Sensitivity] = []

    param_builders: Dict[str, tuple[float, Callable[[float], MemoryMarkovModel]]] = {}
    if seu_per_bit_day > 0:
        param_builders["seu_per_bit_day"] = (
            seu_per_bit_day,
            lambda v: factory(
                n,
                k,
                m=m,
                seu_per_bit_day=v,
                erasure_per_symbol_day=erasure_per_symbol_day,
                scrub_period_seconds=scrub_period_seconds,
            ),
        )
    if erasure_per_symbol_day > 0:
        param_builders["erasure_per_symbol_day"] = (
            erasure_per_symbol_day,
            lambda v: factory(
                n,
                k,
                m=m,
                seu_per_bit_day=seu_per_bit_day,
                erasure_per_symbol_day=v,
                scrub_period_seconds=scrub_period_seconds,
            ),
        )
    if scrub_period_seconds:
        param_builders["scrub_period_seconds"] = (
            scrub_period_seconds,
            lambda v: factory(
                n,
                k,
                m=m,
                seu_per_bit_day=seu_per_bit_day,
                erasure_per_symbol_day=erasure_per_symbol_day,
                scrub_period_seconds=v,
            ),
        )

    for name, (value, build) in param_builders.items():
        results.append(
            Sensitivity(
                parameter=name,
                base_value=value,
                base_ber=base_ber,
                elasticity=elasticity(build, value, t_hours),
            )
        )
    return sorted(results, key=lambda s: -abs(s.elasticity))
