"""Binomial confidence intervals, log-domain-safe at BER ~ 1e-12.

Two interval families cover the repo's estimation regimes:

* **Wilson score** — the frequentist workhorse the simulator has always
  reported.  Closed form, never degenerate at k=0 or k=n, and its
  coverage oscillates tightly around nominal for moderate p.  The
  algebra here is the exact code that previously lived in
  ``repro.simulator.montecarlo`` (moved, not changed), so historical
  estimates remain bit-identical.
* **Jeffreys** — equal-tailed credible interval of the Beta(k+1/2,
  n-k+1/2) posterior.  Preferred for the extreme-p regime (BER ~ 1e-12)
  where the normal approximation behind Wilson is least at home; the
  standard boundary convention pins the lower limit to 0 when k=0 and
  the upper to 1 when k=n so coverage holds at the edges.

The Beta quantiles are computed from scratch: a Lentz continued
fraction for the regularized incomplete beta with the prefactor kept in
log space (``math.lgamma``), inverted by bisection.  Pure ``math`` only
— scipy stays a test-time cross-check, never a runtime dependency.
"""

from __future__ import annotations

import math
from statistics import NormalDist
from typing import Tuple

__all__ = [
    "wilson_interval",
    "jeffreys_interval",
    "binomial_interval",
    "relative_halfwidth",
    "regularized_incomplete_beta",
    "regularized_incomplete_beta_inv",
    "z_for_confidence",
]

#: Interval methods accepted by :func:`binomial_interval` (and therefore
#: by the CLI's ``--ci-method`` and the stopping rule).
INTERVAL_METHODS = ("wilson", "jeffreys")

#: The z-score the repo has always used for its default 95% Wilson
#: intervals.  Deliberately the rounded 1.96 (not 1.95996...) so every
#: historical estimate, journal and golden test stays bit-identical.
DEFAULT_Z = 1.96


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal quantile for ``confidence`` (0.95 -> 1.95996...)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    failures: int, trials: int, z: float = DEFAULT_Z
) -> Tuple[float, float]:
    """95% (by default) Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p_hat = failures / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


# --------------------------------------------------------------------------
# regularized incomplete beta (log-domain) and its inverse
# --------------------------------------------------------------------------

_CF_MAX_ITER = 300
_CF_EPS = 3e-16
_CF_TINY = 1e-300


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz's continued fraction for I_x(a, b) (Numerical Recipes form)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _CF_TINY:
        d = _CF_TINY
    d = 1.0 / d
    h = d
    for m in range(1, _CF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_TINY:
            d = _CF_TINY
        c = 1.0 + aa / c
        if abs(c) < _CF_TINY:
            c = _CF_TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_TINY:
            d = _CF_TINY
        c = 1.0 + aa / c
        if abs(c) < _CF_TINY:
            c = _CF_TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPS:
            return h
    return h  # converged to working precision in practice long before this


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), the regularized incomplete beta function.

    The prefactor ``x^a (1-x)^b / B(a, b)`` is assembled in log space so
    parameters like ``a = 0.5, b = 1e6 + 0.5, x = 1e-12`` — exactly the
    Jeffreys-at-tiny-BER regime — neither overflow nor lose the exponent
    to premature underflow.
    """
    if a <= 0 or b <= 0:
        raise ValueError("beta parameters must be positive")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    front = math.exp(ln_front)
    # Continued fraction converges fast for x below the distribution
    # bulk; use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) above it.
    if x < (a + 1.0) / (a + b + 2.0):
        return min(1.0, front * _beta_continued_fraction(a, b, x) / a)
    return max(0.0, 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b)


def regularized_incomplete_beta_inv(a: float, b: float, q: float) -> float:
    """Solve ``I_x(a, b) = q`` for ``x`` by monotone bisection.

    Bisection is slower than Newton but has no basin-of-attraction
    failure modes; it runs to full double resolution (the loop exits
    when the bracket midpoint stops moving), which keeps quantiles at
    x ~ 1e-12 accurate in a *relative* sense despite the linear split.
    """
    if a <= 0 or b <= 0:
        raise ValueError("beta parameters must be positive")
    if q <= 0.0:
        return 0.0
    if q >= 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(2000):
        mid = 0.5 * (lo + hi)
        if mid <= lo or mid >= hi:  # bracket exhausted double precision
            break
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def jeffreys_interval(
    failures: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Equal-tailed Jeffreys (Beta(k+1/2, n-k+1/2)) credible interval.

    Boundary convention (Brown, Cai & DasGupta 2001): the lower limit is
    0 when ``failures == 0`` and the upper limit is 1 when
    ``failures == trials``, which is what keeps one-sided coverage at
    the edges of the parameter space.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= failures <= trials:
        raise ValueError(f"failures must be in [0, {trials}], got {failures}")
    alpha = 1.0 - confidence
    a = failures + 0.5
    b = trials - failures + 0.5
    low = (
        0.0
        if failures == 0
        else regularized_incomplete_beta_inv(a, b, alpha / 2.0)
    )
    high = (
        1.0
        if failures == trials
        else regularized_incomplete_beta_inv(a, b, 1.0 - alpha / 2.0)
    )
    return low, high


def binomial_interval(
    failures: int,
    trials: int,
    method: str = "wilson",
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Dispatch to an interval family by name (``wilson`` | ``jeffreys``).

    For the default 95% confidence, Wilson uses the repo-pinned
    ``z = 1.96`` so streamed snapshots match the final
    :class:`~repro.simulator.montecarlo.FailureEstimate` exactly.
    """
    if method == "wilson":
        z = DEFAULT_Z if confidence == 0.95 else z_for_confidence(confidence)
        return wilson_interval(failures, trials, z=z)
    if method == "jeffreys":
        return jeffreys_interval(failures, trials, confidence=confidence)
    raise ValueError(
        f"unknown interval method {method!r}: expected one of {INTERVAL_METHODS}"
    )


def relative_halfwidth(failures: int, trials: int, low: float, high: float) -> float:
    """CI halfwidth relative to the point estimate; ``inf`` when k = 0.

    The adaptive stopping rule is defined on this quantity: with zero
    observed failures the point estimate is 0 and no finite interval
    can be declared "tight enough relative to it", so the rule can never
    stop on an all-zero prefix — the ``--min-trials`` floor and the
    total trial budget bound that case instead.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    p_hat = failures / trials
    if p_hat <= 0.0:
        return math.inf
    return (high - low) / (2.0 * p_hat)
