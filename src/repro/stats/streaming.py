"""Streaming BER aggregation and worker-count-invariant early stopping.

Chunk results arrive in *completion* order, which depends on scheduling,
worker count, and executor choice — everything the determinism contract
says must not matter.  Two consumers turn that unordered stream into
well-defined outputs:

* :class:`StreamingEstimator` folds every completion into a running
  (failures, trials) aggregate and emits a :class:`BerSnapshot` per
  chunk — the incremental BER±CI feed for the obs layer and the CLI's
  live progress line.  Aggregation is a commutative sum, so the final
  snapshot equals the one-shot batch estimate exactly (verify target
  ``mc-streaming-vs-final`` holds this to machine identity).
* :class:`AdaptiveStopper` implements ``--stop-rel-ci``: stop once the
  interval is tight enough relative to the estimate.  Naively testing
  the rule on the completion stream would make the stopping point (and
  hence the estimate) depend on scheduling.  Instead the decision is
  evaluated only on the *contiguous chunk-index prefix*: the stopper
  buffers out-of-order completions and advances a frontier through
  chunks 0, 1, 2, ... in index order, testing the rule after each.  The
  stop index is therefore the smallest ``j`` such that the cumulative
  prefix 0..j satisfies the rule — a pure function of the chunk results
  themselves, identical for any worker count, executor, or schedule.
  The final estimate aggregates exactly chunks 0..j, discarding any
  opportunistically completed later chunks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from .intervals import (
    INTERVAL_METHODS,
    binomial_interval,
    relative_halfwidth,
)

__all__ = ["BerSnapshot", "StreamingEstimator", "StoppingRule", "AdaptiveStopper"]


@dataclass(frozen=True)
class BerSnapshot:
    """One incremental BER±CI observation (after some chunk landed)."""

    chunks: int
    trials: int
    failures: int
    probability: float
    ci_low: float
    ci_high: float
    #: CI halfwidth / point estimate; ``inf`` while failures == 0.
    rel_halfwidth: float
    method: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for trace events and manifests."""
        rel = self.rel_halfwidth
        return {
            "chunks": self.chunks,
            "trials": self.trials,
            "failures": self.failures,
            "probability": self.probability,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "rel_halfwidth": None if math.isinf(rel) else rel,
            "method": self.method,
        }


class StreamingEstimator:
    """Commutative incremental aggregate of chunk (failures, trials).

    Duplicate chunk indices are dropped (first result wins) so straggler
    re-dispatch and journal replays can feed the same estimator without
    double counting — the same dedup rule the coordinator applies.
    """

    def __init__(self, method: str = "wilson", confidence: float = 0.95):
        if method not in INTERVAL_METHODS:
            raise ValueError(
                f"unknown interval method {method!r}: "
                f"expected one of {INTERVAL_METHODS}"
            )
        self.method = method
        self.confidence = confidence
        self.failures = 0
        self.trials = 0
        self.chunks = 0
        self._seen: Set[int] = set()

    def offer(
        self, index: int, failures: int, trials: int
    ) -> Optional[BerSnapshot]:
        """Fold chunk ``index`` in; ``None`` if it was a duplicate.

        Inputs are validated before any state changes: a malformed
        service request or a corrupt chunk record must raise here, not
        propagate ``failures > trials`` into ``binomial_interval`` and
        come back as a nonsense interval.
        """
        failures = int(failures)
        trials = int(trials)
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        if failures > trials:
            raise ValueError(
                f"failures ({failures}) cannot exceed trials ({trials})"
            )
        if index in self._seen:
            return None
        self._seen.add(index)
        self.failures += failures
        self.trials += trials
        self.chunks += 1
        return self.snapshot()

    def snapshot(self) -> BerSnapshot:
        """The current aggregate as a :class:`BerSnapshot`.

        With zero trials the interval is degenerate (``[0, 1]``, infinite
        relative width) but the counters are still the estimator's own:
        zero-trial chunks folded in via :meth:`offer` keep counting, so
        ``chunks``/``failures`` never silently disagree with the
        instance's state.
        """
        if self.trials <= 0:
            return BerSnapshot(
                chunks=self.chunks, trials=self.trials,
                failures=self.failures, probability=0.0,
                ci_low=0.0, ci_high=1.0, rel_halfwidth=math.inf,
                method=self.method,
            )
        low, high = binomial_interval(
            self.failures, self.trials, self.method, self.confidence
        )
        return BerSnapshot(
            chunks=self.chunks,
            trials=self.trials,
            failures=self.failures,
            probability=self.failures / self.trials,
            ci_low=low,
            ci_high=high,
            rel_halfwidth=relative_halfwidth(
                self.failures, self.trials, low, high
            ),
            method=self.method,
        )


@dataclass(frozen=True)
class StoppingRule:
    """``--stop-rel-ci`` semantics: stop when the CI is relatively tight.

    ``rel_ci`` is the target relative halfwidth ((hi-lo)/2 divided by
    the point estimate); ``min_trials`` is a floor the cumulative prefix
    must reach before the rule may fire, protecting against spuriously
    tight intervals off a lucky early prefix (and making all-zero first
    chunks explicitly unable to stop the run, since the relative width
    is infinite at k = 0 regardless).
    """

    rel_ci: float
    min_trials: int = 0
    method: str = "wilson"
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.rel_ci > 0.0:
            raise ValueError(f"rel_ci must be positive, got {self.rel_ci}")
        if self.min_trials < 0:
            raise ValueError(
                f"min_trials must be >= 0, got {self.min_trials}"
            )
        if self.method not in INTERVAL_METHODS:
            raise ValueError(
                f"unknown interval method {self.method!r}: "
                f"expected one of {INTERVAL_METHODS}"
            )

    def satisfied(self, failures: int, trials: int) -> bool:
        """True when (failures, trials) meets the rule and the floor."""
        if trials <= 0 or trials < self.min_trials:
            return False
        if failures <= 0:
            return False  # relative width is infinite at p_hat = 0
        low, high = binomial_interval(
            failures, trials, self.method, self.confidence
        )
        return relative_halfwidth(failures, trials, low, high) <= self.rel_ci


@dataclass
class AdaptiveStopper:
    """Contiguous-prefix early-stop decision over unordered completions.

    Feed every completed chunk (journal replays included) through
    :meth:`offer`; the stopper advances its frontier through chunk
    indices in order and records the smallest prefix end ``stop_index``
    whose cumulative counts satisfy the rule.  Completions arriving
    after the decision (or beyond the frontier once stopped) are
    ignored, so the decision — and anything derived from it — is
    invariant to scheduling.
    """

    rule: StoppingRule
    stop_index: Optional[int] = None
    prefix_failures: int = 0
    prefix_trials: int = 0
    _frontier: int = 0
    _pending: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def offer(self, index: int, failures: int, trials: int) -> None:
        """Record chunk ``index``; duplicates and post-stop chunks drop."""
        if self.stop_index is not None:
            return
        if index < self._frontier or index in self._pending:
            return  # duplicate — first result wins
        self._pending[index] = (int(failures), int(trials))
        while self._frontier in self._pending:
            chunk_failures, chunk_trials = self._pending.pop(self._frontier)
            self.prefix_failures += chunk_failures
            self.prefix_trials += chunk_trials
            decided_index = self._frontier
            self._frontier += 1
            if self.rule.satisfied(self.prefix_failures, self.prefix_trials):
                self.stop_index = decided_index
                self._pending.clear()
                return

    @property
    def should_stop(self) -> bool:
        return self.stop_index is not None
