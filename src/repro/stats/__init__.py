"""Statistical machinery for streaming Monte-Carlo estimation.

The paper's BER/MTTF figures are binomial proportions estimated at
extreme scales (failure probabilities down to ~1e-12), so this package
provides interval math that stays exact in that regime:

* :mod:`repro.stats.intervals` — Wilson score and Jeffreys (Beta
  posterior) binomial confidence intervals, computed with log-domain
  special functions so tiny proportions never underflow, plus the
  relative-halfwidth measure the adaptive stopping rule is defined on.
* :mod:`repro.stats.streaming` — commutative incremental aggregation of
  chunk results into BER±CI snapshots (:class:`StreamingEstimator`) and
  the worker-count-invariant early-stopping decision procedure
  (:class:`StoppingRule` / :class:`AdaptiveStopper`).

Everything here is pure Python + ``math`` — no scipy dependency — so the
interval math is portable into worker processes and the verify layer can
cross-check it against independent implementations.
"""

from .intervals import (
    INTERVAL_METHODS,
    jeffreys_interval,
    binomial_interval,
    regularized_incomplete_beta,
    regularized_incomplete_beta_inv,
    relative_halfwidth,
    wilson_interval,
    z_for_confidence,
)
from .streaming import (
    AdaptiveStopper,
    BerSnapshot,
    StoppingRule,
    StreamingEstimator,
)

__all__ = [
    "INTERVAL_METHODS",
    "jeffreys_interval",
    "binomial_interval",
    "regularized_incomplete_beta",
    "regularized_incomplete_beta_inv",
    "relative_halfwidth",
    "wilson_interval",
    "z_for_confidence",
    "AdaptiveStopper",
    "BerSnapshot",
    "StoppingRule",
    "StreamingEstimator",
]
