"""Vectorized GF(2^m) arithmetic on numpy arrays.

:class:`BatchGF` lifts the table-driven field of :class:`~repro.gf.field.GF2m`
to whole ndarrays: multiplication, division, inversion and powering become a
handful of numpy gather operations over the shared exp/log tables, and
polynomial evaluation runs Horner's rule across an entire batch at once.
This is the arithmetic substrate of the batch RS codec
(:mod:`repro.rs.batch`) and the chunked Monte-Carlo engine.

Semantics match the scalar field element-for-element:

* ``mul``/``div``/``inv``/``pow`` agree with ``GF2m.mul``/``div``/``inv``/
  ``pow`` on every element pair (the property suite in
  ``tests/test_gf_batch_property.py`` sweeps the full field for small m);
* division by zero and inversion of zero raise :class:`ZeroDivisionError`
  if *any* element of the divisor array is zero, mirroring the scalar
  per-element contract;
* inputs follow normal numpy broadcasting, so ``(B, 1)`` against ``(n,)``
  works as expected, including empty (``B == 0``) batches.

Field/table construction is cached per ``(m, primitive_polynomial)`` via
:func:`batch_field`, so codecs, simulators and worker processes share one
table set per field.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence, Union

import numpy as np

from .field import GF2m

ArrayLike = Union[int, Sequence[int], np.ndarray]

#: dtype used for all internal table lookups; wide enough for m <= 16
#: symbol values and for summed log indices.
_DTYPE = np.int64


class BatchGF:
    """Vectorized arithmetic over GF(2^m), table-compatible with ``GF2m``.

    Parameters
    ----------
    m:
        Symbol width in bits.
    primitive_polynomial:
        Optional primitive polynomial override, forwarded to ``GF2m``
        (which validates primitivity while building the tables).
    gf:
        Optionally wrap an existing scalar field instance instead of
        constructing a new one; tables are shared, never rebuilt.
    """

    def __init__(
        self,
        m: int,
        primitive_polynomial: Optional[int] = None,
        gf: Optional[GF2m] = None,
    ):
        if gf is None:
            gf = GF2m(m, primitive_polynomial)
        elif gf.m != m:
            raise ValueError(f"supplied field GF(2^{gf.m}) does not match m={m}")
        self.gf = gf
        self.m = gf.m
        self.order = gf.order
        # _exp is already doubled in GF2m so summed logs need no modulo.
        self._exp = np.asarray(gf._exp, dtype=_DTYPE)
        self._log = np.asarray(gf._log, dtype=_DTYPE)

    # -- coercion -----------------------------------------------------------

    def asarray(self, a: ArrayLike) -> np.ndarray:
        """Coerce to the internal integer dtype (no range check)."""
        return np.asarray(a, dtype=_DTYPE)

    def validate_elements(self, a: ArrayLike) -> np.ndarray:
        """Coerce and range-check an array of field elements."""
        arr = self.asarray(a)
        if arr.size and (arr.min() < 0 or arr.max() >= self.order):
            raise ValueError(
                f"array contains values outside GF(2^{self.m}) "
                f"[0, {self.order - 1}]"
            )
        return arr

    # -- elementwise field operations ---------------------------------------

    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise field addition (XOR). Identical to :meth:`sub`."""
        return np.bitwise_xor(self.asarray(a), self.asarray(b))

    sub = add

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise field multiplication via the shared log/exp tables."""
        a = self.asarray(a)
        b = self.asarray(b)
        # log[0] is 0 in the table; mask zeros out afterwards instead of
        # branching, which keeps the whole operation a flat gather.
        prod = self._exp[self._log[a] + self._log[b]]
        return np.where((a == 0) | (b == 0), 0, prod)

    def div(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise ``a / b``; any zero divisor raises ZeroDivisionError."""
        a = self.asarray(a)
        b = self.asarray(b)
        if np.any(b == 0):
            raise ZeroDivisionError("division by zero in GF(2^m)")
        quot = self._exp[self._log[a] - self._log[b] + (self.order - 1)]
        return np.where(a == 0, 0, quot)

    def inv(self, a: ArrayLike) -> np.ndarray:
        """Elementwise multiplicative inverse; zero raises ZeroDivisionError."""
        a = self.asarray(a)
        if np.any(a == 0):
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return self._exp[(self.order - 1) - self._log[a]]

    def pow(self, a: ArrayLike, e: int) -> np.ndarray:
        """Raise every element of ``a`` to the integer power ``e``.

        Matches ``GF2m.pow`` elementwise: ``0**e == 0`` for positive ``e``,
        ``0**0 == 1``, and a negative power of zero raises
        :class:`ZeroDivisionError`.
        """
        a = self.asarray(a)
        e = int(e)
        zero = a == 0
        if e < 0 and np.any(zero):
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        idx = (self._log[a] * e) % (self.order - 1)
        out = self._exp[idx]
        if e == 0:
            return np.ones_like(a)
        return np.where(zero, 0, out)

    def exp(self, e: ArrayLike) -> np.ndarray:
        """``alpha^e`` for an array of integer exponents."""
        e = self.asarray(e)
        return self._exp[np.mod(e, self.order - 1)]

    def log(self, a: ArrayLike) -> np.ndarray:
        """Discrete log base alpha; any zero element raises ValueError."""
        a = self.asarray(a)
        if np.any(a == 0):
            raise ValueError("log(0) is undefined")
        return self._log[a]

    # -- polynomial evaluation ----------------------------------------------

    def poly_eval(self, coeffs: Sequence[int], x: ArrayLike) -> np.ndarray:
        """Evaluate one polynomial at an array of points (Horner).

        ``coeffs`` is an ascending-order coefficient list (the
        :mod:`repro.gf.poly` convention); ``x`` may be any shape.
        """
        x = self.asarray(x)
        acc = np.zeros_like(x)
        for c in reversed(list(coeffs)):
            acc = self.mul(acc, x) ^ int(c)
        return acc

    def poly_eval_batch(
        self, coeff_rows: ArrayLike, x: ArrayLike
    ) -> np.ndarray:
        """Evaluate a batch of polynomials at a shared set of points.

        Parameters
        ----------
        coeff_rows:
            ``(B, L)`` matrix; row ``b`` holds the ascending-order
            coefficients of polynomial ``b``.
        x:
            ``(P,)`` evaluation points shared by every row.

        Returns
        -------
        ``(B, P)`` matrix of evaluations — for RS decoding, with
        ``x = [alpha^fcr, ..., alpha^(fcr+nsym-1)]``, this is the full
        syndrome matrix of a received batch in one call.
        """
        rows = self.asarray(coeff_rows)
        if rows.ndim != 2:
            raise ValueError(f"coeff_rows must be 2-D, got shape {rows.shape}")
        pts = self.asarray(x).reshape(-1)
        B = rows.shape[0]
        acc = np.zeros((B, pts.size), dtype=_DTYPE)
        for j in range(rows.shape[1] - 1, -1, -1):
            acc = self.mul(acc, pts[np.newaxis, :]) ^ rows[:, j : j + 1]
        return acc

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BatchGF) and other.gf == self.gf

    def __hash__(self) -> int:
        return hash(("BatchGF", self.gf))

    def __repr__(self) -> str:
        return f"BatchGF(m={self.m}, prim_poly={self.gf.prim_poly:#x})"


@lru_cache(maxsize=None)
def batch_field(m: int, primitive_polynomial: Optional[int] = None) -> BatchGF:
    """Cached :class:`BatchGF` per ``(m, primitive_polynomial)``.

    Table construction costs O(2^m) and validates primitivity, so every
    codec, simulator chunk and worker process should go through this
    cache rather than constructing fields ad hoc.
    """
    return BatchGF(m, primitive_polynomial)
