"""Multiplicative structure of GF(2^m): orders, cosets, minimal polynomials.

Supporting theory for code construction and verification:

* :func:`element_order` — order of an element in the multiplicative group;
* :func:`cyclotomic_cosets` — the 2-cyclotomic cosets mod ``2^m - 1``,
  the orbit structure of conjugacy (Frobenius) classes;
* :func:`minimal_polynomial` — the minimal polynomial of an element over
  GF(2), built from its conjugacy class;
* :func:`is_primitive_element` — primitivity test.

Used by the tests to verify the RS generator polynomial from first
principles (its roots are ``n - k`` consecutive powers of a primitive
element, hence the design distance), and available for users building
BCH-style subfield codes on the same field machinery.
"""

from __future__ import annotations

from typing import Dict, List, Set

from . import poly
from .field import GF2m


def element_order(gf: GF2m, a: int) -> int:
    """Multiplicative order of ``a``; raises for 0."""
    if a == 0:
        raise ValueError("0 has no multiplicative order")
    group = gf.order - 1
    # order divides the group order; try divisors in increasing size
    for divisor in sorted(_divisors(group)):
        if gf.pow(a, divisor) == 1:
            return divisor
    raise AssertionError("unreachable: order must divide group order")


def is_primitive_element(gf: GF2m, a: int) -> bool:
    """True iff ``a`` generates the whole multiplicative group."""
    if a == 0:
        return False
    return element_order(gf, a) == gf.order - 1


def cyclotomic_cosets(m: int) -> List[List[int]]:
    """The 2-cyclotomic cosets of exponents modulo ``2^m - 1``.

    Each coset ``{e, 2e, 4e, ...}`` collects the exponents of a full
    conjugacy class; their sizes divide ``m`` and they partition
    ``0 .. 2^m - 2``.
    """
    if m < 2:
        raise ValueError("need m >= 2")
    modulus = (1 << m) - 1
    seen: Set[int] = set()
    cosets: List[List[int]] = []
    for e in range(modulus):
        if e in seen:
            continue
        coset = []
        x = e
        while x not in seen:
            seen.add(x)
            coset.append(x)
            x = (x * 2) % modulus
        cosets.append(sorted(coset))
    return cosets


def conjugates(gf: GF2m, a: int) -> List[int]:
    """The Frobenius conjugacy class ``{a, a^2, a^4, ...}`` of ``a``."""
    if a == 0:
        return [0]
    out = []
    x = a
    while x not in out:
        out.append(x)
        x = gf.mul(x, x)
    return out


def minimal_polynomial(gf: GF2m, a: int) -> List[int]:
    """Minimal polynomial of ``a`` over GF(2), ascending coefficients.

    The product ``prod (x - c)`` over the conjugacy class of ``a``; all
    coefficients land in {0, 1} (verified), and the degree equals the
    class size (a divisor of m).
    """
    if a == 0:
        return [0, 1]  # x
    p = poly.from_roots(gf, conjugates(gf, a))
    if any(c not in (0, 1) for c in p):
        raise AssertionError(
            "minimal polynomial has non-binary coefficients; "
            "field tables are inconsistent"
        )
    return p


def _divisors(n: int) -> List[int]:
    out = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            out.append(d)
            if d != n // d:
                out.append(n // d)
        d += 1
    return out
