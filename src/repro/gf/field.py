"""Finite-field arithmetic over GF(2^m).

Reed-Solomon codes operate on symbols drawn from a Galois field GF(2^m).
This module provides :class:`GF2m`, a table-driven implementation of the
field: multiplication and division run through exponential/logarithm lookup
tables built once per field, while addition/subtraction are plain XOR.

The default primitive polynomials are the conventional ones used by most
codec implementations (e.g. ``x^8 + x^4 + x^3 + x^2 + 1`` for GF(256)); any
other primitive polynomial of the right degree may be supplied.

Example
-------
>>> gf = GF2m(8)
>>> gf.mul(0x53, 0xCA)
1
>>> gf.add(5, 5)
0
"""

from __future__ import annotations

from typing import Iterable, List

# Conventional primitive polynomials for GF(2^m), keyed by m.  Values are the
# full polynomial including the x^m term, encoded as an integer bit mask
# (bit i = coefficient of x^i).
DEFAULT_PRIMITIVE_POLYNOMIALS = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}


class GF2m:
    """The finite field GF(2^m) with table-driven arithmetic.

    Parameters
    ----------
    m:
        Symbol width in bits; the field has ``2^m`` elements.  Supported
        range is 2..16 with the built-in polynomial table.
    primitive_polynomial:
        Optional full primitive polynomial (including the ``x^m`` term)
        encoded as an integer bit mask.  Must be primitive of degree ``m``;
        primitivity is verified during table construction.

    Attributes
    ----------
    m: symbol width in bits.
    order: number of field elements, ``2^m``.
    alpha: the primitive element used to generate the multiplicative group
        (always the element ``2``, i.e. the polynomial ``x``).
    """

    def __init__(self, m: int, primitive_polynomial: int | None = None):
        if not isinstance(m, int) or m < 2:
            raise ValueError(f"symbol width m must be an integer >= 2, got {m!r}")
        if primitive_polynomial is None:
            try:
                primitive_polynomial = DEFAULT_PRIMITIVE_POLYNOMIALS[m]
            except KeyError:
                raise ValueError(
                    f"no built-in primitive polynomial for m={m}; "
                    "pass primitive_polynomial explicitly"
                ) from None
        if primitive_polynomial.bit_length() != m + 1:
            raise ValueError(
                f"primitive polynomial must have degree {m} "
                f"(bit length {m + 1}), got bit length "
                f"{primitive_polynomial.bit_length()}"
            )
        self.m = m
        self.order = 1 << m
        self.prim_poly = primitive_polynomial
        self.alpha = 2
        self._exp, self._log = self._build_tables()

    def _build_tables(self) -> tuple[List[int], List[int]]:
        """Build exp/log tables; verify the polynomial is primitive."""
        size = self.order
        exp = [0] * (2 * size)  # doubled so mul can skip one modulo
        log = [0] * size
        x = 1
        for i in range(size - 1):
            exp[i] = x
            if log[x] != 0 and x != 1:
                raise ValueError(
                    f"polynomial {self.prim_poly:#x} is not primitive over "
                    f"GF(2^{self.m}): repeated element {x} at power {i}"
                )
            log[x] = i
            x <<= 1
            if x & size:
                x ^= self.prim_poly
        if x != 1:
            raise ValueError(
                f"polynomial {self.prim_poly:#x} is not primitive over "
                f"GF(2^{self.m}): alpha^(2^m-1) != 1"
            )
        for i in range(size - 1, 2 * size):
            exp[i] = exp[i - (size - 1)]
        return exp, log

    # -- basic operations ---------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR). Identical to :meth:`sub`."""
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        """Field subtraction (XOR). Identical to :meth:`add`."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError if b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[self._log[a] - self._log[b] + (self.order - 1)]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError if a == 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return self._exp[(self.order - 1) - self._log[a]]

    def pow(self, a: int, e: int) -> int:
        """Raise element ``a`` to the (possibly negative) integer power ``e``."""
        if a == 0:
            if e > 0:
                return 0
            if e == 0:
                return 1
            raise ZeroDivisionError("0 cannot be raised to a negative power")
        idx = (self._log[a] * e) % (self.order - 1)
        return self._exp[idx]

    def exp(self, e: int) -> int:
        """Return ``alpha^e`` for the primitive element alpha."""
        return self._exp[e % (self.order - 1)]

    def log(self, a: int) -> int:
        """Return the discrete log base alpha; raises ValueError for 0."""
        if a == 0:
            raise ValueError("log(0) is undefined")
        return self._log[a]

    # -- introspection helpers ----------------------------------------------

    def elements(self) -> Iterable[int]:
        """Iterate over all field elements, 0 first."""
        return range(self.order)

    def nonzero_elements(self) -> Iterable[int]:
        """Iterate over the multiplicative group (all nonzero elements)."""
        return range(1, self.order)

    def validate_element(self, a: int) -> None:
        """Raise ValueError if ``a`` is not a field element."""
        if not isinstance(a, (int,)) or not 0 <= a < self.order:
            raise ValueError(f"{a!r} is not an element of GF(2^{self.m})")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and other.m == self.m
            and other.prim_poly == self.prim_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.prim_poly))

    def __repr__(self) -> str:
        return f"GF2m(m={self.m}, prim_poly={self.prim_poly:#x})"
