"""Polynomial arithmetic over GF(2^m).

Polynomials are represented as Python lists of field elements in
*ascending* power order: ``[c0, c1, c2]`` is ``c0 + c1*x + c2*x^2``.
The zero polynomial is ``[0]`` (never the empty list).  All functions are
free functions taking the field as their first argument, which keeps the
representation transparent and cheap — the RS codec manipulates these lists
in tight loops.
"""

from __future__ import annotations

from typing import List, Sequence

from .field import GF2m

Poly = List[int]


def normalize(p: Sequence[int]) -> Poly:
    """Strip trailing (high-order) zero coefficients; zero poly is ``[0]``."""
    p = list(p)
    while len(p) > 1 and p[-1] == 0:
        p.pop()
    if not p:
        return [0]
    return p


def degree(p: Sequence[int]) -> int:
    """Degree of the polynomial; the zero polynomial has degree -1."""
    for i in range(len(p) - 1, -1, -1):
        if p[i] != 0:
            return i
    return -1


def is_zero(p: Sequence[int]) -> bool:
    """True if every coefficient is zero."""
    return all(c == 0 for c in p)


def add(gf: GF2m, a: Sequence[int], b: Sequence[int]) -> Poly:
    """Add two polynomials (coefficient-wise XOR)."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for i, c in enumerate(b):
        out[i] ^= c
    return normalize(out)


# Subtraction over GF(2^m) is identical to addition.
sub = add


def scale(gf: GF2m, p: Sequence[int], s: int) -> Poly:
    """Multiply every coefficient of ``p`` by the scalar ``s``."""
    if s == 0:
        return [0]
    return normalize([gf.mul(c, s) for c in p])


def mul(gf: GF2m, a: Sequence[int], b: Sequence[int]) -> Poly:
    """Multiply two polynomials (schoolbook; degrees here are small)."""
    if is_zero(a) or is_zero(b):
        return [0]
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            if cb == 0:
                continue
            out[i + j] ^= gf.mul(ca, cb)
    return normalize(out)


def mul_by_xn(p: Sequence[int], n: int) -> Poly:
    """Multiply by ``x^n`` (shift coefficients up by n)."""
    if is_zero(p):
        return [0]
    return [0] * n + list(p)


def divmod_poly(gf: GF2m, num: Sequence[int], den: Sequence[int]) -> tuple[Poly, Poly]:
    """Polynomial long division; returns ``(quotient, remainder)``."""
    den = normalize(den)
    if is_zero(den):
        raise ZeroDivisionError("polynomial division by zero")
    num = normalize(num)
    dn, dd = degree(num), degree(den)
    if dn < dd:
        return [0], list(num)
    rem = list(num)
    quot = [0] * (dn - dd + 1)
    inv_lead = gf.inv(den[dd])
    for shift in range(dn - dd, -1, -1):
        coef = gf.mul(rem[dd + shift], inv_lead)
        quot[shift] = coef
        if coef != 0:
            for i in range(dd + 1):
                rem[i + shift] ^= gf.mul(den[i], coef)
    return normalize(quot), normalize(rem)


def mod(gf: GF2m, num: Sequence[int], den: Sequence[int]) -> Poly:
    """Remainder of polynomial division."""
    return divmod_poly(gf, num, den)[1]


def eval_at(gf: GF2m, p: Sequence[int], x: int) -> int:
    """Evaluate the polynomial at the field element ``x`` (Horner)."""
    acc = 0
    for c in reversed(list(p)):
        acc = gf.mul(acc, x) ^ c
    return acc


def derivative(gf: GF2m, p: Sequence[int]) -> Poly:
    """Formal derivative.

    Over characteristic-2 fields the derivative keeps odd-power coefficients
    (shifted down one) and kills even-power ones, because the integer factor
    ``i`` reduces mod 2.
    """
    out = [0] * max(1, len(p) - 1)
    for i in range(1, len(p)):
        if i % 2 == 1:
            out[i - 1] = p[i]
    return normalize(out)


def monomial(gf: GF2m, coefficient: int, power: int) -> Poly:
    """Build ``coefficient * x^power``."""
    if coefficient == 0:
        return [0]
    return [0] * power + [coefficient]


def from_roots(gf: GF2m, roots: Sequence[int]) -> Poly:
    """Build the monic polynomial with the given roots: prod (x - r)."""
    p: Poly = [1]
    for r in roots:
        # (x - r) == (x + r) in characteristic 2
        p = mul(gf, p, [r, 1])
    return p


def roots(gf: GF2m, p: Sequence[int]) -> List[int]:
    """Find all roots by exhaustive (Chien-style) search over the field."""
    return [x for x in gf.elements() if eval_at(gf, p, x) == 0]
