"""Galois-field arithmetic substrate for the Reed-Solomon codec.

Public surface:

* :class:`~repro.gf.field.GF2m` — the field GF(2^m) with table-driven
  multiply/divide/pow.
* :mod:`~repro.gf.poly` — polynomial algebra over the field (ascending
  coefficient lists).
* :class:`~repro.gf.batch.BatchGF` / :func:`~repro.gf.batch.batch_field` —
  vectorized numpy-table arithmetic on whole arrays (cached per field).
"""

from . import poly, structure
from .batch import BatchGF, batch_field
from .field import DEFAULT_PRIMITIVE_POLYNOMIALS, GF2m
from .structure import (
    conjugates,
    cyclotomic_cosets,
    element_order,
    is_primitive_element,
    minimal_polynomial,
)

__all__ = [
    "GF2m",
    "BatchGF",
    "batch_field",
    "DEFAULT_PRIMITIVE_POLYNOMIALS",
    "poly",
    "structure",
    "element_order",
    "is_primitive_element",
    "cyclotomic_cosets",
    "conjugates",
    "minimal_polynomial",
]
