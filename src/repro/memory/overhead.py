"""Scrubbing overhead: availability, bandwidth and energy (paper Section 2).

The paper lists the drawbacks of scrubbing qualitatively — "an increase
of hardware overhead ..., a reduction in memory availability during the
scrubbing operations and an increase in power consumption" — and leaves
them unquantified.  This module closes that loop with first-order models
built on the same Section 6 decoder-complexity formulas:

* each scrub pass touches every word: read + decode (``Td = 3n+10(n-k)``
  cycles) + re-encode/write;
* a pass every ``Tsc`` seconds makes the memory unavailable for the pass
  duration (unless the controller interleaves, which trades latency
  instead);
* dynamic energy is proportional to cycles spent scrubbing.

Combined with :func:`repro.analysis.sweep.max_scrub_period_for_budget`,
this turns Fig. 7's "scrub at least hourly" into a cost-aware design
choice — see ``examples/scrubbing_tuning.py`` and
``benchmarks/bench_scrub_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rs.complexity import decoding_time_cycles

#: Default assumed cycles to re-encode and write a word back (encode is a
#: short LFSR pass; writeback is one access) relative to the decode.
DEFAULT_WRITEBACK_CYCLES = 10


@dataclass(frozen=True)
class ScrubOverhead:
    """Overhead of one scrubbing configuration on one memory.

    Attributes
    ----------
    scrub_period_seconds: the configured Tsc.
    pass_seconds: wall time of one full scrub pass.
    availability: fraction of time the memory is not busy scrubbing.
    scrub_bandwidth_bits_per_s: bits read by the scrubber per second.
    duty_cycle: fraction of controller cycles spent scrubbing (the
        dynamic-power proxy).
    """

    scrub_period_seconds: float
    pass_seconds: float
    availability: float
    scrub_bandwidth_bits_per_s: float
    duty_cycle: float


def scrub_overhead(
    n: int,
    k: int,
    num_words: int,
    scrub_period_seconds: float,
    m: int = 8,
    clock_hz: float = 50e6,
    num_decoders: int = 1,
    writeback_cycles: int = DEFAULT_WRITEBACK_CYCLES,
) -> ScrubOverhead:
    """First-order overhead of scrubbing ``num_words`` every ``Tsc``.

    ``num_decoders`` models arrangements that scrub replicas in parallel
    (the duplex scrubs both modules in one pass through its two
    decoders).  Raises if a pass cannot complete within the period.
    """
    if num_words <= 0:
        raise ValueError("num_words must be positive")
    if scrub_period_seconds <= 0:
        raise ValueError("scrub period must be positive")
    if clock_hz <= 0:
        raise ValueError("clock must be positive")
    if num_decoders < 1:
        raise ValueError("need at least one decoder")
    cycles_per_word = decoding_time_cycles(n, k) + writeback_cycles
    pass_seconds = num_words * cycles_per_word / clock_hz
    if pass_seconds > scrub_period_seconds:
        raise ValueError(
            f"scrub pass takes {pass_seconds:.2f}s but the period is "
            f"{scrub_period_seconds:.2f}s; the scrubber cannot keep up"
        )
    duty = pass_seconds / scrub_period_seconds
    bits_per_pass = num_words * n * m * num_decoders
    return ScrubOverhead(
        scrub_period_seconds=scrub_period_seconds,
        pass_seconds=pass_seconds,
        availability=1.0 - duty,
        scrub_bandwidth_bits_per_s=bits_per_pass / scrub_period_seconds,
        duty_cycle=duty,
    )


def min_scrub_period_for_availability(
    n: int,
    k: int,
    num_words: int,
    availability_target: float,
    m: int = 8,
    clock_hz: float = 50e6,
    writeback_cycles: int = DEFAULT_WRITEBACK_CYCLES,
) -> float:
    """Shortest Tsc (seconds) keeping availability above the target.

    The availability counterpart of the BER search: Fig. 7 pushes Tsc
    down, this constraint pushes it up; a feasible design needs the BER
    budget's maximum period above this minimum.
    """
    if not 0 < availability_target < 1:
        raise ValueError("availability target must be in (0, 1)")
    cycles_per_word = decoding_time_cycles(n, k) + writeback_cycles
    pass_seconds = num_words * cycles_per_word / clock_hz
    return pass_seconds / (1.0 - availability_target)
