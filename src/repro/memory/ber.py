"""BER curve evaluation helpers (paper Eq. 1).

Thin orchestration over the memory models: evaluate ``BER(t)`` on a time
grid with a selectable backend — the CTMC transient solvers or, where
valid, the closed-form solver of :mod:`repro.memory.analytic` — and bundle
the result with its grid for the benchmark harness and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .analytic import AnalyticScopeError, duplex_ber, simplex_ber
from .base import MemoryMarkovModel
from .duplex import DuplexMarkovModel
from .simplex import SimplexMarkovModel


@dataclass(frozen=True)
class BERCurve:
    """A BER(t) series with its time grid (hours)."""

    label: str
    times_hours: np.ndarray
    ber: np.ndarray

    def at(self, t_hours: float) -> float:
        """BER at the grid point closest to ``t_hours``.

        Nearest-point lookup is a *grid* convenience, not extrapolation:
        a query lying outside the grid span by more than one grid step
        (the largest spacing of the grid) raises :class:`ValueError`
        instead of silently returning the nearest endpoint — e.g.
        ``at(1e6)`` on a 48-hour grid is a caller bug, not "the 48 h
        value".  Single-point grids keep the legacy nearest behaviour
        (they define no step).
        """
        t = float(t_hours)
        times = self.times_hours
        if times.size > 1:
            lo = float(times.min())
            hi = float(times.max())
            step = float(np.max(np.abs(np.diff(np.sort(times)))))
            if t < lo - step or t > hi + step:
                raise ValueError(
                    f"t={t:g} h lies outside the curve's grid "
                    f"[{lo:g}, {hi:g}] h by more than one grid step "
                    f"({step:g} h); evaluate the model there instead of "
                    "snapping to the nearest grid point"
                )
        idx = int(np.argmin(np.abs(times - t)))
        return float(self.ber[idx])

    @property
    def final(self) -> float:
        """BER at the last grid point."""
        return float(self.ber[-1])


def ber_curve(
    model: MemoryMarkovModel,
    times_hours: Sequence[float],
    method: str = "auto",
    label: str | None = None,
) -> BERCurve:
    """Evaluate BER(t) for a memory model.

    ``method="auto"`` prefers the closed-form solver (exact, deep-tail
    accurate) when the model is in its scope — no scrubbing and a single
    fault class — and falls back to uniformization otherwise.  Any
    explicit CTMC method name ("uniformization", "expm", "ode") or
    "analytic" can be forced.
    """
    times = np.asarray(list(times_hours), dtype=float)
    if label is None:
        label = repr(model)
    if method == "auto":
        try:
            return BERCurve(label, times, _analytic_ber(model, times))
        except AnalyticScopeError:
            method = "uniformization"
    if method == "analytic":
        return BERCurve(label, times, _analytic_ber(model, times))
    return BERCurve(label, times, model.ber(times, method=method))


def _analytic_ber(model: MemoryMarkovModel, times: np.ndarray) -> np.ndarray:
    if isinstance(model, SimplexMarkovModel):
        return simplex_ber(model, times)
    if isinstance(model, DuplexMarkovModel):
        return duplex_ber(model, times)
    raise AnalyticScopeError(
        f"no closed-form solver for model type {type(model).__name__}"
    )
