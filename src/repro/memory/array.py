"""Whole-memory aggregation over the word-level models (paper Section 4).

The paper analyses one memory word and notes "the extension by
considering the whole memory (memories) is straightforward".  This module
performs that extension under the standard word-independence assumption:

* data integrity — probability every word of a W-word memory is readable
  at time t, ``(1 - P_word(t))^W``, computed in the log domain;
* expected unreadable words at t;
* mean time to first data loss (MTTDL) — first failure among W
  independent word chains.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .base import MemoryMarkovModel


class WholeMemory:
    """``num_words`` independent copies of one word-level model.

    Parameters
    ----------
    model:
        Any word-level memory model (simplex, duplex, detection, MBU…).
    num_words:
        Number of codewords in the memory (e.g. 2^20 for a 2 MiB data
        store of RS(18,16) bytes).
    """

    def __init__(self, model: MemoryMarkovModel, num_words: int):
        if num_words <= 0:
            raise ValueError(f"num_words must be positive, got {num_words}")
        self.model = model
        self.num_words = num_words

    def word_fail_probability(
        self, times_hours: Sequence[float], **kwargs
    ) -> np.ndarray:
        """``P_word(t)`` from the underlying chain."""
        return self.model.fail_probability(times_hours, **kwargs)

    def data_integrity(self, times_hours: Sequence[float], **kwargs) -> np.ndarray:
        """Probability the whole memory is fully readable at each time."""
        p_word = self.word_fail_probability(times_hours, **kwargs)
        out = np.empty_like(p_word)
        for i, p in enumerate(p_word):
            if p >= 1.0:
                out[i] = 0.0
            else:
                out[i] = math.exp(self.num_words * math.log1p(-float(p)))
        return out

    def loss_probability(self, times_hours: Sequence[float], **kwargs) -> np.ndarray:
        """Probability at least one word is unreadable, stable for tiny
        per-word probabilities (uses expm1 rather than 1 - integrity)."""
        p_word = self.word_fail_probability(times_hours, **kwargs)
        out = np.empty_like(p_word)
        for i, p in enumerate(p_word):
            if p >= 1.0:
                out[i] = 1.0
            else:
                out[i] = -math.expm1(self.num_words * math.log1p(-float(p)))
        return out

    def expected_unreadable_words(
        self, times_hours: Sequence[float], **kwargs
    ) -> np.ndarray:
        """Expected number of unreadable words at each time."""
        return self.num_words * self.word_fail_probability(times_hours, **kwargs)

    def mean_time_to_data_loss(
        self,
        horizon_hours: float | None = None,
        grid_points: int = 400,
    ) -> float:
        """MTTDL — expected time until the first word fails.

        Computed as ``∫ (1 - P_word(t))^W dt`` (the survival function of
        the minimum of W iid failure times) on a geometric grid out to
        ``horizon_hours`` (default: 20x the word MTTF / W heuristic,
        doubled until the survival tail is negligible).
        """
        word_mttf = self.model.mean_time_to_failure()
        if math.isinf(word_mttf):
            return math.inf
        if horizon_hours is None:
            horizon_hours = 20.0 * word_mttf / self.num_words
        for _ in range(60):
            grid = np.linspace(0.0, horizon_hours, grid_points)
            survival = self.data_integrity(grid)
            if survival[-1] < 1e-6:
                return float(np.trapezoid(survival, grid))
            horizon_hours *= 2.0
        raise RuntimeError("MTTDL integration failed to converge")
