"""Markov model of the RS-coded *simplex* memory system (paper Fig. 2).

One memory word protected by an RS(n, k) code.  States are pairs
``S(er, re)`` — ``er`` erasures (located permanent faults) and ``re``
random errors (SEU bit flips) — valid while the code capability

    er + 2 * re <= n - k

holds; any event pushing past it absorbs into ``FAIL``.  The model is the
one introduced in the authors' companion work [7] and reviewed in paper
Section 5:

* a bit flip on one of the ``n - er - re`` untouched symbols adds a random
  error at rate ``m * λ * (n - er - re)`` (repeat SEUs on an already
  erroneous symbol are excluded by assumption);
* a permanent fault on an untouched symbol adds an erasure at rate
  ``λe * (n - er - re)``;
* a permanent fault on a symbol already holding a random error converts it
  to an erasure (the located fault subsumes the flip) at rate ``λe * re``;
* scrubbing resets all random errors, ``S(er, re) → S(er, 0)``, at rate
  ``1/Tsc``.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .base import FAIL, MemoryMarkovModel
from .rates import FaultRates

SimplexState = Tuple[int, int]  # (er, re); plus the FAIL sentinel


class SimplexMarkovModel(MemoryMarkovModel):
    """CTMC of a simplex RS(n, k) memory word.

    Parameters mirror :class:`~repro.memory.base.MemoryMarkovModel`;
    ``rates`` carries λ (per bit), λe (per symbol) and the scrub rate, all
    per hour.
    """

    def initial_state(self) -> SimplexState:
        return (0, 0)

    def is_valid(self, er: int, re: int) -> bool:
        """Code capability check: correctable iff ``er + 2 re <= n - k``."""
        return er + 2 * re <= self.nsym

    def transitions(
        self, state
    ) -> Iterable[Tuple[object, float]]:
        if state == FAIL:
            return []
        er, re = state
        clean = self.n - er - re
        lam_bit = self.rates.seu_per_bit
        lam_sym = self.rates.erasure_per_symbol
        moves: List[Tuple[object, float]] = []

        def emit(target: SimplexState, rate: float) -> None:
            if rate <= 0.0:
                return
            moves.append((target if self.is_valid(*target) else FAIL, rate))

        if clean > 0:
            # SEU on an untouched symbol
            emit((er, re + 1), self.m * lam_bit * clean)
            # permanent fault on an untouched symbol
            emit((er + 1, re), lam_sym * clean)
        if re > 0:
            # permanent fault on a symbol already in random error
            emit((er + 1, re - 1), lam_sym * re)
            # scrubbing removes all random errors
            if self.rates.has_scrubbing:
                emit((er, 0), self.rates.scrub_rate)
        return moves

    def enumerate_valid_states(self) -> List[SimplexState]:
        """All (er, re) states within capability (for tests/inspection)."""
        return [
            (er, re)
            for er in range(self.nsym + 1)
            for re in range((self.nsym - er) // 2 + 1)
        ]


def simplex_model(
    n: int,
    k: int,
    m: int = 8,
    seu_per_bit_day: float = 0.0,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: float | None = None,
) -> SimplexMarkovModel:
    """Convenience constructor taking the paper's units directly."""
    rates = FaultRates.from_paper_units(
        seu_per_bit_day=seu_per_bit_day,
        erasure_per_symbol_day=erasure_per_symbol_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    return SimplexMarkovModel(n, k, m, rates)
