"""Markov model of the *duplex* RS-coded memory system (paper Figs. 3-4).

Two replicated modules each store an RS(n, k) codeword of the same data;
an arbiter recovers single-sided erasures by masking (taking the symbol
from the healthy replica) and compares the two independently decoded words
using per-word correction flags (paper Section 3).

Each state is the 6-tuple ``(X, Y, b, e1, e2, ec)`` of paper Fig. 3:

* ``X``  — symbol pairs erased in *both* replicas (unmaskable erasures);
* ``Y``  — symbol pairs erased in exactly one replica, other side clean
  (masked by the arbiter, no capability cost);
* ``b``  — pairs with an erasure on one side and a random error on the
  other (masking copies the error, so these cost like random errors on
  *both* words);
* ``e1``/``e2`` — pairs with a random error only in word 1 / word 2;
* ``ec`` — pairs with random errors in *both* replicas of the symbol.

After erasure recovery, word ``i`` sees ``X`` erasures and
``b + ec + e_i`` random errors, so the per-word capability conditions are

    X + 2*(b + ec + e1) <= n - k      and      X + 2*(b + ec + e2) <= n - k.

The default fail rule (``fail_rule="either"``) absorbs into FAIL as soon
as *either* word exceeds capability — the arbiter cannot discriminate
simultaneous (mis)corrections (paper Section 3, last bullet).  The
alternative ``"both"`` rule (system fails only when both words are beyond
capability, the arbiter trusting whichever word still decodes) is kept as
an ablation; see ``benchmarks/bench_ablation_failrule.py``.

The thirteen transition families (A-I, L-O) of paper Fig. 4 are
implemented verbatim, with one documented correction: the text gives the
rate of family B (erasure landing on the errored partner of an
erasure/error pair) as ``λe * Y`` but Fig. 4 labels the arc ``b * λe``,
which is also what the semantics require; we use ``λe * b``.

Scrubbing rewrites corrected data, clearing every random error while
permanent faults persist: ``(X, Y, b, e1, e2, ec) → (X, Y + b, 0, 0, 0, 0)``
at rate ``1/Tsc`` (a ``b`` pair loses its random error and keeps its
single-sided erasure, becoming a ``Y`` pair).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .base import FAIL, MemoryMarkovModel
from .rates import FaultRates

DuplexState = Tuple[int, int, int, int, int, int]  # (X, Y, b, e1, e2, ec)

FAIL_RULES = ("either", "both")


class DuplexMarkovModel(MemoryMarkovModel):
    """CTMC of a duplex RS(n, k) memory word pair.

    Parameters
    ----------
    n, k, m, rates:
        As in :class:`~repro.memory.base.MemoryMarkovModel`.
    fail_rule:
        ``"either"`` (paper default): FAIL when either word exceeds
        capability.  ``"both"``: FAIL only when both do (ablation).
    """

    def __init__(
        self,
        n: int,
        k: int,
        m: int,
        rates: FaultRates,
        fail_rule: str = "either",
    ):
        if fail_rule not in FAIL_RULES:
            raise ValueError(
                f"fail_rule must be one of {FAIL_RULES}, got {fail_rule!r}"
            )
        super().__init__(n, k, m, rates)
        self.fail_rule = fail_rule

    def initial_state(self) -> DuplexState:
        return (0, 0, 0, 0, 0, 0)

    # -- capability -------------------------------------------------------

    def word_ok(self, state: DuplexState, word: int) -> bool:
        """Per-word capability condition after erasure recovery."""
        x, _y, b, e1, e2, ec = state
        e_own = e1 if word == 1 else e2
        return x + 2 * (b + ec + e_own) <= self.nsym

    def is_valid(self, state: DuplexState) -> bool:
        """Non-FAIL condition under the configured fail rule."""
        ok1 = self.word_ok(state, 1)
        ok2 = self.word_ok(state, 2)
        if self.fail_rule == "either":
            return ok1 and ok2
        return ok1 or ok2

    # -- dynamics ---------------------------------------------------------

    def transitions(self, state) -> Iterable[Tuple[object, float]]:
        if state == FAIL:
            return []
        x, y, b, e1, e2, ec = state
        clean = self.n - x - y - b - e1 - e2 - ec
        lam = self.rates.seu_per_bit
        lam_e = self.rates.erasure_per_symbol
        flip = self.m * lam  # per-symbol SEU rate
        moves: List[Tuple[object, float]] = []

        def emit(target: DuplexState, rate: float) -> None:
            if rate <= 0.0:
                return
            moves.append((target if self.is_valid(target) else FAIL, rate))

        # --- erasure-driven transitions (paper Fig. 4, states A..H) ---
        if y > 0:  # A: second erasure completes a pair
            emit((x + 1, y - 1, b, e1, e2, ec), lam_e * y)
        if b > 0:  # B: erasure on the errored partner of a b pair
            emit((x + 1, y, b - 1, e1, e2, ec), lam_e * b)
        if clean > 0:  # C: erasure on an untouched pair
            emit((x, y + 1, b, e1, e2, ec), lam_e * clean)
        if e1 > 0:  # D: erasure lands on the errored symbol itself
            emit((x, y + 1, b, e1 - 1, e2, ec), lam_e * e1)
        if e2 > 0:  # E
            emit((x, y + 1, b, e1, e2 - 1, ec), lam_e * e2)
        if ec > 0:  # F: erasure on a doubly-errored pair
            emit((x, y, b + 1, e1, e2, ec - 1), lam_e * ec)
        if e1 > 0:  # G: erasure on the clean partner of an errored symbol
            emit((x, y, b + 1, e1 - 1, e2, ec), lam_e * e1)
        if e2 > 0:  # H
            emit((x, y, b + 1, e1, e2 - 1, ec), lam_e * e2)

        # --- random-error-driven transitions (states I, L, M, N, O) ---
        if y > 0:  # I: SEU on the clean partner of a single-sided erasure
            emit((x, y - 1, b + 1, e1, e2, ec), flip * y)
        if clean > 0:  # L, M: SEU on an untouched pair, word 1 / word 2
            emit((x, y, b, e1 + 1, e2, ec), flip * clean)
            emit((x, y, b, e1, e2 + 1, ec), flip * clean)
        if e1 > 0:  # N: SEU on the partner of an e1 symbol
            emit((x, y, b, e1 - 1, e2, ec + 1), flip * e1)
        if e2 > 0:  # O
            emit((x, y, b, e1, e2 - 1, ec + 1), flip * e2)

        # --- scrubbing: random errors cleared, erasures persist ---
        if self.rates.has_scrubbing:
            target = (x, y + b, 0, 0, 0, 0)
            if target != state:
                emit(target, self.rates.scrub_rate)
        return moves


def duplex_model(
    n: int,
    k: int,
    m: int = 8,
    seu_per_bit_day: float = 0.0,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: float | None = None,
    fail_rule: str = "either",
) -> DuplexMarkovModel:
    """Convenience constructor taking the paper's units directly."""
    rates = FaultRates.from_paper_units(
        seu_per_bit_day=seu_per_bit_day,
        erasure_per_symbol_day=erasure_per_symbol_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    return DuplexMarkovModel(n, k, m, rates, fail_rule=fail_rule)
