"""Deterministic-period scrubbing (extension beyond the paper).

The paper folds scrubbing into the CTMC as an exponential event at rate
``1/Tsc`` — an approximation, since real scrubbers run on a fixed
schedule.  This module solves the *deterministic* variant exactly by
piecewise transient solution: propagate the scrub-free chain across each
period, then apply the scrub mapping (every non-FAIL state jumps to its
scrubbed image) instantaneously, and repeat.

``benchmarks/bench_ablation_scrub_model.py`` quantifies the gap between
the two scrubbing semantics on the paper's Fig. 7 configuration.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Sequence

import numpy as np

from ..markov import CTMC
from ..markov.solvers import uniformization_propagate
from .base import FAIL, MemoryMarkovModel
from .duplex import DuplexMarkovModel
from .simplex import SimplexMarkovModel


def scrub_image(model: MemoryMarkovModel, state):
    """The state a configuration lands in after one scrub operation."""
    if state == FAIL:
        return FAIL
    if isinstance(model, SimplexMarkovModel):
        er, _re = state
        return (er, 0)
    if isinstance(model, DuplexMarkovModel):
        x, y, b, _e1, _e2, _ec = state
        return (x, y + b, 0, 0, 0, 0)
    raise TypeError(f"no scrub image defined for {type(model).__name__}")


def _scrub_free_clone(model: MemoryMarkovModel) -> MemoryMarkovModel:
    """Copy of the model with the rate-based scrub transition removed."""
    rates = dataclasses.replace(model.rates, scrub_rate=0.0)
    if isinstance(model, DuplexMarkovModel):
        return DuplexMarkovModel(
            model.n, model.k, model.m, rates, fail_rule=model.fail_rule
        )
    if isinstance(model, SimplexMarkovModel):
        return SimplexMarkovModel(model.n, model.k, model.m, rates)
    raise TypeError(f"unsupported model type {type(model).__name__}")


def deterministic_scrub_fail_probability(
    model: MemoryMarkovModel,
    times_hours: Sequence[float],
    scrub_period_hours: float,
) -> np.ndarray:
    """``P_Fail(t)`` under fixed-schedule scrubbing every ``scrub_period_hours``.

    The model's own ``scrub_rate`` is ignored; fault dynamics between
    scrubs come from the scrub-free chain, and at each multiple of the
    period every state's probability mass moves to its scrub image.
    """
    if scrub_period_hours <= 0:
        raise ValueError("scrub period must be positive")
    times = np.asarray(list(times_hours), dtype=float)
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    free = _scrub_free_clone(model)
    chain = free.chain
    order = np.argsort(times)
    result = np.zeros(len(times))
    fail_idx = chain.index.get(FAIL)

    p = chain.p0.copy()
    epoch = 0  # number of scrubs applied so far
    t_epoch = 0.0  # time at which `p` is valid
    scrub_map = _scrub_matrix(free, chain)
    for pos in order:
        t = times[pos]
        # advance whole scrub periods first
        while (epoch + 1) * scrub_period_hours <= t:
            boundary = (epoch + 1) * scrub_period_hours
            p = _propagate(chain, p, boundary - t_epoch)
            p = p @ scrub_map
            epoch += 1
            t_epoch = boundary
        q = _propagate(chain, p, t - t_epoch)
        result[pos] = 0.0 if fail_idx is None else q[fail_idx]
        # keep p at the epoch boundary; q was a lookahead within the period
    return result


def deterministic_scrub_ber(
    model: MemoryMarkovModel,
    times_hours: Sequence[float],
    scrub_period_hours: float,
) -> np.ndarray:
    """BER(t) (paper Eq. 1) under fixed-schedule scrubbing."""
    return model.ber_factor * deterministic_scrub_fail_probability(
        model, times_hours, scrub_period_hours
    )


def _propagate(chain: CTMC, p: np.ndarray, dt: float) -> np.ndarray:
    """Advance a distribution by ``dt`` under the chain's dynamics."""
    return uniformization_propagate(chain.rate_matrix, p, dt)


@dataclasses.dataclass(frozen=True)
class EmbeddedScrubAnalysis:
    """Long-run behaviour of the scrub-synchronized embedded DTMC.

    Observing the system just after each deterministic scrub yields a
    discrete-time chain with kernel ``K = exp(Q_free * Tsc) . S``.  Once
    transients die out, the surviving probability mass decays geometrically
    at the spectral radius ``rho`` of K's transient block — i.e. the
    system settles into a constant *per-period loss rate* ``1 - rho``.

    Attributes
    ----------
    scrub_period_hours: the period analysed.
    per_period_loss: asymptotic P(fail during one period | alive).
    equivalent_rate_per_hour: the constant hazard matching that loss.
    """

    scrub_period_hours: float
    per_period_loss: float
    equivalent_rate_per_hour: float


def embedded_scrub_analysis(
    model: MemoryMarkovModel, scrub_period_hours: float
) -> EmbeddedScrubAnalysis:
    """Asymptotic per-scrub-period failure rate of a scrubbed memory.

    Complements :func:`deterministic_scrub_fail_probability` (which gives
    the exact transient) with the long-mission steady decay rate — the
    number a designer multiplies by mission length to budget data loss.
    """
    if scrub_period_hours <= 0:
        raise ValueError("scrub period must be positive")
    free = _scrub_free_clone(model)
    chain = free.chain
    if FAIL not in chain.index:
        return EmbeddedScrubAnalysis(scrub_period_hours, 0.0, 0.0)
    n = chain.num_states
    # one-period propagator: rows are post-state distributions
    period = np.vstack(
        [
            uniformization_propagate(
                chain.rate_matrix, _unit_vector(n, i), scrub_period_hours
            )
            for i in range(n)
        ]
    )
    kernel = period @ _scrub_matrix(free, chain)
    transient_idx = [i for i, s in enumerate(chain.states) if s != FAIL]
    block = kernel[np.ix_(transient_idx, transient_idx)]
    eigenvalues = np.linalg.eigvals(block)
    rho = float(np.max(np.abs(eigenvalues)))
    rho = min(rho, 1.0)
    loss = 1.0 - rho
    rate = (
        0.0
        if loss == 0.0
        else -math.log(rho) / scrub_period_hours
    )
    return EmbeddedScrubAnalysis(scrub_period_hours, loss, rate)


def _unit_vector(n: int, i: int) -> np.ndarray:
    v = np.zeros(n)
    v[i] = 1.0
    return v


def _scrub_matrix(model: MemoryMarkovModel, chain: CTMC) -> np.ndarray:
    """Stochastic matrix applying one scrub to every state's mass."""
    n = chain.num_states
    mat = np.zeros((n, n))
    images: Dict[int, int] = {}
    for idx, state in enumerate(chain.states):
        image = scrub_image(model, state)
        images[idx] = chain.index[image]
    for src, dst in images.items():
        mat[src, dst] = 1.0
    return mat
