"""Fault-rate bookkeeping and unit conversion.

The paper quotes SEU rates in *errors/bit/day* (Section 6: 7.3e-7 to
1.7e-5), scrubbing periods in *seconds* (Fig. 7: 900-3600 s), transient
horizons in *hours* (48 h) and permanent-fault horizons in *months* (24).
Mixing these up is the classic reproduction bug, so every rate in this
package is carried in a :class:`FaultRates` record with an explicit
canonical unit of **per hour**, and all constructors convert at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

HOURS_PER_DAY = 24.0
HOURS_PER_MONTH = 730.0  # 365.25 / 12 * 24, the usual reliability convention
SECONDS_PER_HOUR = 3600.0


def per_day_to_per_hour(rate_per_day: float) -> float:
    """Convert a rate expressed per day into the canonical per-hour unit."""
    return rate_per_day / HOURS_PER_DAY


def per_hour_to_per_day(rate_per_hour: float) -> float:
    """Convert a canonical per-hour rate back to per day."""
    return rate_per_hour * HOURS_PER_DAY


def months_to_hours(months: float) -> float:
    """Convert a storage horizon in months to hours."""
    return months * HOURS_PER_MONTH


def hours_to_months(hours: float) -> float:
    """Convert hours to months (reliability convention: 730 h/month)."""
    return hours / HOURS_PER_MONTH


def scrub_rate_from_period(period_seconds: float) -> float:
    """Scrubbing rate ``1/Tsc`` in per-hour units from a period in seconds.

    The paper models scrubbing as an exponential event at rate ``1/Tsc``
    (Section 5); a 3600 s period is rate 1.0 per hour.
    """
    if period_seconds <= 0:
        raise ValueError(f"scrub period must be positive, got {period_seconds}")
    return SECONDS_PER_HOUR / period_seconds


@dataclass(frozen=True)
class FaultRates:
    """Fault environment of a memory word, canonical per-hour units.

    Attributes
    ----------
    seu_per_bit:
        Transient (SEU) bit-flip rate per bit per hour — the paper's λ.
    erasure_per_symbol:
        Permanent-fault rate per symbol per hour — the paper's λe.
        Permanent faults are assumed located (self-checking / Iddq), hence
        treated as erasures.
    scrub_rate:
        Scrubbing rate 1/Tsc per hour; 0 disables scrubbing.
    """

    seu_per_bit: float = 0.0
    erasure_per_symbol: float = 0.0
    scrub_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("seu_per_bit", "erasure_per_symbol", "scrub_rate"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be nonnegative, got {value}")

    @classmethod
    def from_paper_units(
        cls,
        seu_per_bit_day: float = 0.0,
        erasure_per_symbol_day: float = 0.0,
        scrub_period_seconds: float | None = None,
    ) -> "FaultRates":
        """Build from the units the paper quotes (per-day rates, second periods)."""
        return cls(
            seu_per_bit=per_day_to_per_hour(seu_per_bit_day),
            erasure_per_symbol=per_day_to_per_hour(erasure_per_symbol_day),
            scrub_rate=(
                0.0
                if scrub_period_seconds is None
                else scrub_rate_from_period(scrub_period_seconds)
            ),
        )

    def with_scrub_period(self, period_seconds: float | None) -> "FaultRates":
        """Copy with the scrubbing period replaced (None disables)."""
        rate = 0.0 if period_seconds is None else scrub_rate_from_period(
            period_seconds
        )
        return replace(self, scrub_rate=rate)

    @property
    def has_scrubbing(self) -> bool:
        return self.scrub_rate > 0.0
