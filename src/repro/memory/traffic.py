"""Read-traffic integration over the BER trajectory.

The paper's BER is defined over *reads* ("the number of bits with errors
divided by the total number of bits that have been read", Section 4) but
its figures evaluate a single stopping time.  Real workloads read
continuously; this module integrates the word-level failure trajectory
against a read schedule to produce the quantities an operator sees:

* expected failed reads over a horizon,
* the workload-averaged BER (the paper's definition taken literally for
  uniformly spread reads),
* time of the first expected failed read.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .base import MemoryMarkovModel


def expected_failed_reads(
    model: MemoryMarkovModel,
    read_rate_per_hour: float,
    horizon_hours: float,
    grid_points: int = 200,
    **solve_kwargs,
) -> float:
    """Expected number of failed reads in ``[0, horizon]``.

    Reads arrive uniformly (rate ``r``); each read at time ``t`` fails
    with probability ``P_fail(t)``, so the expectation is
    ``r * ∫ P_fail(t) dt`` — evaluated by trapezoidal quadrature on the
    transient solution.
    """
    if read_rate_per_hour < 0:
        raise ValueError("read rate must be nonnegative")
    if horizon_hours <= 0:
        raise ValueError("horizon must be positive")
    grid = np.linspace(0.0, horizon_hours, grid_points)
    pf = model.fail_probability(grid, **solve_kwargs)
    return float(read_rate_per_hour * np.trapezoid(pf, grid))


def workload_averaged_ber(
    model: MemoryMarkovModel,
    horizon_hours: float,
    grid_points: int = 200,
    **solve_kwargs,
) -> float:
    """The paper's Definition-4 BER for uniformly spread reads.

    ``m (n-k)/k`` times the time-average of ``P_fail`` over the horizon —
    always below the end-of-horizon BER the figures plot, by a factor
    approaching the growth order of ``P_fail`` (2 for a quadratically
    growing t = 1 transient regime).
    """
    if horizon_hours <= 0:
        raise ValueError("horizon must be positive")
    grid = np.linspace(0.0, horizon_hours, grid_points)
    pf = model.fail_probability(grid, **solve_kwargs)
    return float(
        model.ber_factor * np.trapezoid(pf, grid) / horizon_hours
    )


def time_of_first_expected_failure(
    model: MemoryMarkovModel,
    read_rate_per_hour: float,
    max_horizon_hours: float = 1e6,
    grid_points: int = 400,
) -> float:
    """Smallest horizon at which one failed read is expected.

    Solves ``r * ∫_0^T P_fail = 1`` by bisection on ``T``; returns
    ``inf`` if even ``max_horizon_hours`` does not accumulate one
    expected failure.
    """
    if read_rate_per_hour <= 0:
        raise ValueError("read rate must be positive")
    total = expected_failed_reads(
        model, read_rate_per_hour, max_horizon_hours, grid_points
    )
    if total < 1.0:
        return math.inf
    lo, hi = 0.0, max_horizon_hours
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:
            break
        if (
            expected_failed_reads(model, read_rate_per_hour, mid, grid_points)
            >= 1.0
        ):
            hi = mid
        else:
            lo = mid
    return hi
