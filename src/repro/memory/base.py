"""Shared scaffolding for the memory-system Markov models.

Both arrangements (simplex, duplex) compile a word-level fault model to a
:class:`~repro.markov.chain.CTMC` with a single absorbing ``FAIL`` state
and evaluate the paper's figure of merit

    BER(t) = m * (n - k) / k * P_Fail(t)          (paper Eq. 1)

The models describe *one* memory word (and its replica, for duplex) — the
paper argues the whole-memory extension is a straightforward product and
does not change the comparison (Section 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..markov import CTMC, build_chain
from .rates import FaultRates

#: Label of the absorbing unrecoverable-error state.
FAIL = "FAIL"

State = Hashable


class MemoryMarkovModel(ABC):
    """Base class: an RS(n, k)-coded memory word under a fault environment.

    Subclasses implement :meth:`initial_state` and :meth:`transitions`
    (the local dynamics); the base class handles chain construction,
    transient solution and BER evaluation.
    """

    def __init__(self, n: int, k: int, m: int, rates: FaultRates):
        if not 0 < k < n:
            raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
        if n > (1 << m) - 1:
            raise ValueError(f"codeword length n={n} exceeds 2^m - 1 for m={m}")
        self.n = n
        self.k = k
        self.m = m
        self.rates = rates
        self._chain: Optional[CTMC] = None

    # -- model definition (subclass responsibility) -----------------------

    @abstractmethod
    def initial_state(self) -> State:
        """The fault-free Good state."""

    @abstractmethod
    def transitions(self, state: State) -> Iterable[Tuple[State, float]]:
        """Local transition rule: ``(successor, rate)`` pairs from ``state``."""

    # -- derived quantities ----------------------------------------------

    @property
    def nsym(self) -> int:
        """Number of check symbols ``n - k``."""
        return self.n - self.k

    @property
    def ber_factor(self) -> float:
        """The prefactor ``m (n - k) / k`` of paper Eq. 1."""
        return self.m * self.nsym / self.k

    @property
    def chain(self) -> CTMC:
        """The compiled CTMC (built lazily, cached)."""
        if self._chain is None:
            self._chain = build_chain(self.initial_state(), self.transitions)
        return self._chain

    def fail_probability(
        self,
        times: Sequence[float],
        method: str = "uniformization",
        **kwargs,
    ) -> np.ndarray:
        """``P_Fail(t)`` for each time point (hours)."""
        chain = self.chain
        if FAIL not in chain.index:
            # fault rates of zero: Fail is unreachable
            return np.zeros(len(np.atleast_1d(np.asarray(times))))
        return chain.state_probability(FAIL, times, method=method, **kwargs)

    def ber(
        self,
        times: Sequence[float],
        method: str = "uniformization",
        **kwargs,
    ) -> np.ndarray:
        """Bit Error Rate over a time grid (hours) — paper Eq. 1."""
        return self.ber_factor * self.fail_probability(
            times, method=method, **kwargs
        )

    def mean_time_to_failure(self) -> float:
        """Expected hours until absorption in FAIL (inf if unreachable)."""
        chain = self.chain
        if FAIL not in chain.index:
            return float("inf")
        return chain.mean_time_to_absorption([FAIL])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, m={self.m}, "
            f"rates={self.rates})"
        )
