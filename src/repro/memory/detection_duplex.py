"""Duplex memory with finite permanent-fault location latency.

The duplex arrangement's whole advantage rests on the arbiter *knowing*
which symbols are faulty: a located fault is masked from the healthy
replica for free (paper Section 3), while Section 2 concedes that until
location the fault behaves like a random error.  This model makes the
location delay a parameter: each replica symbol is clean (C), in random
error (E), holding an **unlocated** permanent fault (U — costs like an
error, cannot be masked), or holding a **located** one (L — maskable).

Pair categories (counts form the state; ``mi`` means the U is in module
``i`` with a random error opposite):

| field | pair | word damage (w1, w2) |
|---|---|---|
| ``x``  | L/L | (1, 1) — unmaskable erasure |
| ``y``  | L/C (either side) | (0, 0) — masked |
| ``b``  | L/E (either side) | (2, 2) — masking copies the error |
| ``ec`` | E/E | (2, 2) |
| ``e1``/``e2`` | E/C | (2, 0) / (0, 2) |
| ``u1``/``u2`` | U/C | (2, 0) / (0, 2) |
| ``m1``/``m2`` | U/E with U in module 1/2 | (2, 2) |
| ``w``  | U/L (either side) | (2, 2) — masking imports the U error |
| ``uu`` | U/U | (2, 2) |

Self-checking locates each unlocated fault at rate ``detection_rate``:
``u_i -> y``, ``m_i -> b``, ``w -> x``, ``uu -> w`` (at twice the rate —
either side may be found first).  As the detector speeds up the chain
converges to the paper's duplex model (verified in the tests); with a
slow detector the duplex loses exactly the masking advantage the paper
credits it with.

Erasure arrivals follow the paper's per-pair rate convention (a clean
pair degrades at total rate λe, split evenly between the two sides —
Fig. 4 family C), so the fast-detection limit lands on the base model
rather than a rescaled variant.  Scrubbing corrects random errors and
rewrites both modules; stuck cells — located or not — re-corrupt their
symbol, so ``b -> y``, ``m_i -> u_i`` and ``u/w/uu/x/y`` persist.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .base import FAIL, MemoryMarkovModel
from .rates import FaultRates

#: (x, y, b, e1, e2, ec, u1, u2, m1, m2, w, uu)
DuplexDetectionState = Tuple[int, ...]

_FIELDS = ("x", "y", "b", "e1", "e2", "ec", "u1", "u2", "m1", "m2", "w", "uu")
_IDX = {name: i for i, name in enumerate(_FIELDS)}


class DuplexDetectionModel(MemoryMarkovModel):
    """Duplex RS(n, k) chain with finite fault-location latency.

    Parameters
    ----------
    n, k, m, rates:
        As in the base class.
    detection_rate:
        Per-unlocated-fault location rate (per hour).
    fail_rule:
        ``"either"`` (paper) or ``"both"`` as in
        :class:`~repro.memory.duplex.DuplexMarkovModel`.
    """

    def __init__(
        self,
        n: int,
        k: int,
        m: int,
        rates: FaultRates,
        detection_rate: float,
        fail_rule: str = "either",
    ):
        if detection_rate < 0:
            raise ValueError(
                f"detection rate must be nonnegative, got {detection_rate}"
            )
        if fail_rule not in ("either", "both"):
            raise ValueError(f"unknown fail_rule {fail_rule!r}")
        super().__init__(n, k, m, rates)
        self.detection_rate = detection_rate
        self.fail_rule = fail_rule

    def initial_state(self) -> DuplexDetectionState:
        return (0,) * len(_FIELDS)

    # -- capability ---------------------------------------------------------

    def word_ok(self, state: DuplexDetectionState, word: int) -> bool:
        x, _y, b, e1, e2, ec, u1, u2, m1, m2, w, uu = state
        own_single = (e1 + u1) if word == 1 else (e2 + u2)
        shared = b + ec + m1 + m2 + w + uu
        return x + 2 * (shared + own_single) <= self.nsym

    def is_valid(self, state: DuplexDetectionState) -> bool:
        ok1 = self.word_ok(state, 1)
        ok2 = self.word_ok(state, 2)
        return (ok1 and ok2) if self.fail_rule == "either" else (ok1 or ok2)

    # -- dynamics -------------------------------------------------------

    def transitions(self, state) -> Iterable[Tuple[object, float]]:
        if state == FAIL:
            return []
        x, y, b, e1, e2, ec, u1, u2, m1, m2, w, uu = state
        clean = self.n - sum(state)
        flip = self.m * self.rates.seu_per_bit
        lam_e = self.rates.erasure_per_symbol
        mu = self.detection_rate
        moves: List[Tuple[object, float]] = []

        def emit(rate: float, **delta: int) -> None:
            if rate <= 0.0:
                return
            target = list(state)
            for name, change in delta.items():
                target[_IDX[name]] += change
            target_t = tuple(target)
            moves.append((target_t if self.is_valid(target_t) else FAIL, rate))

        # --- permanent-fault arrivals (unlocated), paper pair convention ---
        if clean > 0:
            emit(lam_e * clean / 2.0, u1=+1)
            emit(lam_e * clean / 2.0, u2=+1)
        if e1 > 0:  # on the errored side itself (D-analog) / clean side (G)
            emit(lam_e * e1, e1=-1, u1=+1)
            emit(lam_e * e1, e1=-1, m2=+1)  # U lands in module 2
        if e2 > 0:
            emit(lam_e * e2, e2=-1, u2=+1)
            emit(lam_e * e2, e2=-1, m1=+1)
        if y > 0:  # clean partner of a located fault (A-analog)
            emit(lam_e * y, y=-1, w=+1)
        if b > 0:  # errored partner of a located fault (B-analog)
            emit(lam_e * b, b=-1, w=+1)
        if ec > 0:  # one of a double-error pair turns faulty (F-analog)
            emit(lam_e * ec / 2.0, ec=-1, m1=+1)
            emit(lam_e * ec / 2.0, ec=-1, m2=+1)
        if u1 > 0:  # second fault on the clean partner
            emit(lam_e * u1, u1=-1, uu=+1)
        if u2 > 0:
            emit(lam_e * u2, u2=-1, uu=+1)
        if m1 > 0:  # fault on the errored (module 2) side
            emit(lam_e * m1, m1=-1, uu=+1)
        if m2 > 0:
            emit(lam_e * m2, m2=-1, uu=+1)

        # --- SEU flips on clean symbols ---
        if clean > 0:
            emit(flip * clean, e1=+1)
            emit(flip * clean, e2=+1)
        if y > 0:  # clean partner of a located fault (I-analog)
            emit(flip * y, y=-1, b=+1)
        if e1 > 0:  # partner flip (N-analog)
            emit(flip * e1, e1=-1, ec=+1)
        if e2 > 0:
            emit(flip * e2, e2=-1, ec=+1)
        if u1 > 0:  # clean partner of an unlocated module-1 fault
            emit(flip * u1, u1=-1, m1=+1)
        if u2 > 0:
            emit(flip * u2, u2=-1, m2=+1)

        # --- self-checking locates unlocated faults ---
        if mu > 0:
            if u1 > 0:
                emit(mu * u1, u1=-1, y=+1)
            if u2 > 0:
                emit(mu * u2, u2=-1, y=+1)
            if m1 > 0:
                emit(mu * m1, m1=-1, b=+1)
            if m2 > 0:
                emit(mu * m2, m2=-1, b=+1)
            if w > 0:
                emit(mu * w, w=-1, x=+1)
            if uu > 0:
                emit(2.0 * mu * uu, uu=-1, w=+1)

        # --- scrubbing: random errors cleared, faults persist in place ---
        if self.rates.has_scrubbing:
            target = [0] * len(_FIELDS)
            target[_IDX["x"]] = x
            target[_IDX["y"]] = y + b      # b loses its E, keeps its L
            target[_IDX["u1"]] = u1 + m1   # m_i loses its E, keeps its U
            target[_IDX["u2"]] = u2 + m2
            target[_IDX["w"]] = w
            target[_IDX["uu"]] = uu
            target_t = tuple(target)
            if target_t != state:
                moves.append(
                    (
                        target_t if self.is_valid(target_t) else FAIL,
                        self.rates.scrub_rate,
                    )
                )
        return moves


    # -- instantaneous (read-at-t) metric ----------------------------------

    def read_unreliability(self, times_hours) -> "np.ndarray":
        """Probability a read at each time fails (no scrubbing).

        Exact per-pair decomposition: the lumped chain is the count
        process of n iid 16-state pairs (side-resolved {C, E, U, L}²), so
        the occupancy of over-capability configurations follows from the
        pair occupancies and a 2-D convolution over per-pair damage
        weights.  Location *healing* the word (U -> L turns cost 2 into a
        maskable 0) is precisely what this metric captures and the
        absorbing first-passage metric cannot.
        """
        import numpy as np
        from scipy.linalg import expm as dense_expm

        if self.rates.has_scrubbing:
            raise ValueError(
                "read_unreliability does not support rate-based scrubbing "
                "(global scrubs couple the pairs); compare unscrubbed"
            )
        times = np.asarray(list(times_hours), dtype=float)
        generator, weights = self._pair_generator()
        out = np.zeros(len(times))
        p0 = np.zeros(generator.shape[0])
        p0[0] = 1.0  # (C, C)
        for i, t in enumerate(times):
            occupancy = p0 @ dense_expm(generator * t)
            out[i] = self._fail_from_pair_occupancy(occupancy, weights)
        return out

    def read_ber(self, times_hours) -> "np.ndarray":
        """Instantaneous read BER per paper Eq. 1."""
        return self.ber_factor * self.read_unreliability(times_hours)

    _SIDE_STATES = ("C", "E", "U", "L")

    def _pair_generator(self):
        """Generator of one side-resolved pair + per-state damage weights."""
        import numpy as np

        states = [
            (s1, s2) for s1 in self._SIDE_STATES for s2 in self._SIDE_STATES
        ]
        index = {s: i for i, s in enumerate(states)}
        flip = self.m * self.rates.seu_per_bit
        lam_e = self.rates.erasure_per_symbol
        mu = self.detection_rate
        q = np.zeros((16, 16))

        def add(src, dst, rate):
            if rate <= 0:
                return
            i, j = index[src], index[dst]
            q[i, j] += rate
            q[i, i] -= rate

        for s1, s2 in states:
            pair = (s1, s2)
            both_clean = s1 == "C" and s2 == "C"
            for side, status, other in ((0, s1, s2), (1, s2, s1)):
                def to(new_status):
                    return (
                        (new_status, s2) if side == 0 else (s1, new_status)
                    )

                if status == "C":
                    add(pair, to("E"), flip)
                    # paper pair convention: clean *pairs* take faults at
                    # total rate lam_e; non-clean pairs expose each
                    # eligible side at lam_e
                    add(pair, to("U"), lam_e / 2.0 if both_clean else lam_e)
                elif status == "E":
                    add(pair, to("U"), lam_e / 2.0 if s1 == s2 == "E" else lam_e)
                elif status == "U":
                    add(pair, to("L"), mu)
        return q, {s: self._pair_weight(s) for s in states}

    @staticmethod
    def _pair_weight(pair) -> Tuple[int, int]:
        """Decoder-facing damage (word1, word2) of one pair state."""
        s1, s2 = pair
        if s1 == "L" and s2 == "L":
            return (1, 1)
        if "L" in pair:
            other = s2 if s1 == "L" else s1
            if other == "C":
                return (0, 0)       # masked for free
            return (2, 2)           # masking imports the partner's error
        w1 = 2 if s1 in ("E", "U") else 0
        w2 = 2 if s2 in ("E", "U") else 0
        return (w1, w2)

    def _fail_from_pair_occupancy(self, occupancy, weights) -> float:
        """P(word over capability) by 2-D convolution over n iid pairs."""
        import numpy as np

        states = list(weights)
        cap = self.nsym + 1
        dist = np.zeros((cap + 1, cap + 1))
        dist[0, 0] = 1.0
        steps = [
            (weights[s], float(p))
            for s, p in zip(states, occupancy)
            if p > 0.0
        ]
        for _ in range(self.n):
            nxt = np.zeros_like(dist)
            for w1 in range(cap + 1):
                for w2 in range(cap + 1):
                    mass = dist[w1, w2]
                    if mass == 0.0:
                        continue
                    for (d1, d2), p in steps:
                        nxt[min(cap, w1 + d1), min(cap, w2 + d2)] += mass * p
            dist = nxt
        p_fail1 = float(dist[cap, :].sum())
        p_fail2 = float(dist[:, cap].sum())
        p_both = float(dist[cap, cap])
        if self.fail_rule == "both":
            return p_both
        return p_fail1 + p_fail2 - p_both

    def open_transitions(self, state) -> Iterable[Tuple[object, float]]:
        """Lumped dynamics without FAIL absorption (testing hook).

        Used by the cross-validation tests to enumerate the full count
        chain for tiny ``n`` and confirm the per-pair decomposition.
        """
        try:
            # shadow the bound method with an accept-all instance attribute
            self.is_valid = lambda _state: True  # type: ignore[method-assign]
            return list(self.transitions(state))
        finally:
            del self.is_valid  # reveal the class method again


def duplex_detection_model(
    n: int,
    k: int,
    m: int = 8,
    seu_per_bit_day: float = 0.0,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: float | None = None,
    mean_detection_hours: float = 1.0,
    fail_rule: str = "either",
) -> DuplexDetectionModel:
    """Convenience constructor in the paper's units."""
    rates = FaultRates.from_paper_units(
        seu_per_bit_day=seu_per_bit_day,
        erasure_per_symbol_day=erasure_per_symbol_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    if mean_detection_hours < 0:
        raise ValueError("mean detection latency must be nonnegative")
    detection_rate = (
        1e9 if mean_detection_hours == 0 else 1.0 / mean_detection_hours
    )
    return DuplexDetectionModel(
        n, k, m, rates, detection_rate, fail_rule=fail_rule
    )
