"""Closed-form solutions for the no-scrubbing memory models.

The paper's word-level chains are *lumpings* of independent per-symbol
(simplex) or per-symbol-pair (duplex) processes.  When no scrubbing is
active and only one fault class is present, the per-word damage measure is
monotone non-decreasing, so the first-passage probability into FAIL equals
the point-in-time probability of exceeding capability — and that tail can
be evaluated in closed form by dynamic programming over sums of
independent per-symbol damage weights.

These solvers serve two purposes:

* they give *full relative accuracy* arbitrarily deep in the tail (the
  paper's Figs. 8-10 reach BER = 1e-200, far below what a generic matrix
  method resolves in absolute terms), and
* they are an independent derivation that cross-validates the CTMC
  machinery on the overlap region (see tests/test_cross_validation.py).

Scope: pure-transient or pure-permanent environments without scrubbing.
Mixed environments include damage-*reducing* transitions (an erasure
subsuming a random error, paper families D/E/G/H and the simplex
``(er+1, re-1)`` move), which breaks the monotonicity argument; calls in
that regime raise :class:`AnalyticScopeError`.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.special import gammainc

from .duplex import DuplexMarkovModel
from .rates import FaultRates
from .simplex import SimplexMarkovModel


class AnalyticScopeError(ValueError):
    """Raised when a model is outside the closed-form solver's validity."""


def _check_scope(rates: FaultRates) -> None:
    if rates.has_scrubbing:
        raise AnalyticScopeError(
            "closed-form solver does not support scrubbing; "
            "use the CTMC transient solvers"
        )
    if rates.seu_per_bit > 0 and rates.erasure_per_symbol > 0:
        raise AnalyticScopeError(
            "closed-form solver covers pure-transient or pure-permanent "
            "environments only (mixed faults have non-monotone damage)"
        )


def _binomial_tail(n: int, p: float, threshold: int) -> float:
    """``P(Binomial(n, p) > threshold)`` summed in the log domain.

    Terms are positive, so accumulating from the largest keeps full
    relative accuracy down to the underflow floor (~1e-300).
    """
    if threshold >= n:
        return 0.0
    if threshold < 0:
        return 1.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    logs = [
        math.lgamma(n + 1)
        - math.lgamma(j + 1)
        - math.lgamma(n - j + 1)
        + j * log_p
        + (n - j) * log_q
        for j in range(threshold + 1, n + 1)
    ]
    peak = max(logs)
    if peak == -math.inf:
        return 0.0
    return math.exp(peak) * sum(math.exp(v - peak) for v in logs)


# --------------------------------------------------------------------------
# simplex
# --------------------------------------------------------------------------


def simplex_fail_probability(
    model: SimplexMarkovModel, times: Sequence[float]
) -> np.ndarray:
    """Exact ``P_Fail(t)`` of the no-scrub simplex chain.

    Pure permanent faults: each symbol is independently erased by time t
    with probability ``1 - exp(-λe t)``; FAIL iff more than ``n - k``
    symbols are erased.  Pure transients: each symbol independently flipped
    with probability ``1 - exp(-m λ t)``; FAIL iff the error count exceeds
    ``t_code = (n - k) // 2`` (i.e. ``2 re > n - k``).
    """
    _check_scope(model.rates)
    times = np.atleast_1d(np.asarray(times, dtype=float))
    out = np.zeros(len(times))
    if model.rates.erasure_per_symbol > 0:
        rate = model.rates.erasure_per_symbol
        threshold = model.nsym
    else:
        rate = model.m * model.rates.seu_per_bit
        threshold = model.nsym // 2
    if rate == 0.0:
        return out
    for i, t in enumerate(times):
        p = -math.expm1(-rate * t)
        out[i] = _binomial_tail(model.n, p, threshold)
    return out


def simplex_ber(model: SimplexMarkovModel, times: Sequence[float]) -> np.ndarray:
    """Closed-form BER(t) (paper Eq. 1) of the no-scrub simplex system."""
    return model.ber_factor * simplex_fail_probability(model, times)


# --------------------------------------------------------------------------
# duplex
# --------------------------------------------------------------------------


def _duplex_permanent_pmf(lam_e: float, t: float) -> list[float]:
    """Per-pair damage weight pmf under pure permanent faults.

    Per the paper's (per-pair) rates, a pair walks clean → Y → X with rate
    ``λe`` at each hop.  Only an ``X`` pair costs capability (weight 1);
    ``Y`` pairs are masked (weight 0).
    """
    a = lam_e * t
    # P(X) is the Erlang-2 CDF 1 - e^{-a}(1 + a); the naive difference
    # cancels catastrophically for small a, so use the regularized lower
    # incomplete gamma, which scipy evaluates with full relative accuracy.
    p_x = float(gammainc(2, a))
    return [1.0 - p_x, p_x]


def duplex_permanent_fail_probability(
    model: DuplexMarkovModel, times: Sequence[float]
) -> np.ndarray:
    """Exact ``P_Fail(t)`` for duplex under pure permanent faults, no scrub.

    Both per-word conditions degenerate to ``X <= n - k``, so FAIL iff the
    count of doubly-erased pairs exceeds ``n - k``.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    out = np.zeros(len(times))
    lam_e = model.rates.erasure_per_symbol
    if lam_e == 0.0:
        return out
    for i, t in enumerate(times):
        pmf = _duplex_permanent_pmf(lam_e, t)
        # weight pmf has only weights {0, 1}: plain binomial tail
        out[i] = _binomial_tail(model.n, pmf[1], model.nsym)
    return out


def _duplex_transient_pair_probs(flip: float, t: float) -> tuple[float, float, float, float]:
    """Occupancies (clean, e1, e2, ec) of the per-pair transient chain.

    Rates: clean → e1 and clean → e2 each at ``flip = m λ``; e1 → ec and
    e2 → ec at ``flip``.  Closed form: p_clean = exp(-2a), p_e1 = p_e2 =
    exp(-a) - exp(-2a), p_ec = (1 - exp(-a))^2, with a = flip * t.
    """
    a = flip * t
    ea = math.exp(-a)
    p_clean = ea * ea
    p_e = ea * (-math.expm1(-a))  # exp(-a) - exp(-2a), stable for small a
    p_ec = math.expm1(-a) ** 2    # (1 - exp(-a))^2
    return p_clean, p_e, p_e, p_ec


def duplex_transient_fail_probability(
    model: DuplexMarkovModel, times: Sequence[float]
) -> np.ndarray:
    """Exact ``P_Fail(t)`` for duplex under pure transients, no scrub.

    Word i fails when ``e_i + ec > t_code`` with ``t_code = (n-k) // 2``.
    Under the default "either" rule P_Fail = P(fail_1) + P(fail_2) -
    P(fail_1 and fail_2); under the "both" ablation rule it is the joint
    term alone.  The joint term is evaluated by a 2-D convolution DP over
    the per-pair damage vector (w1, w2) in {(0,0), (1,0), (0,1), (1,1)}
    (e1, e2 and ec contributions), with positive accumulations throughout.
    """
    times = np.atleast_1d(np.asarray(times, dtype=float))
    out = np.zeros(len(times))
    flip = model.m * model.rates.seu_per_bit
    if flip == 0.0:
        return out
    t_code = model.nsym // 2
    n = model.n
    for idx, t in enumerate(times):
        p_clean, p_e1, p_e2, p_ec = _duplex_transient_pair_probs(flip, t)
        p_single = -math.expm1(-flip * t)  # marginal per-word error prob
        p1 = _binomial_tail(n, p_single, t_code)
        p2 = p1
        joint = _duplex_joint_tail(n, (p_clean, p_e1, p_e2, p_ec), t_code)
        if model.fail_rule == "both":
            out[idx] = joint
        else:
            out[idx] = p1 + p2 - joint
    return out


def _duplex_joint_tail(
    n: int, probs: tuple[float, float, float, float], t_code: int
) -> float:
    """``P(w1 > t_code and w2 > t_code)`` over n iid pairs, by 2-D DP."""
    p_clean, p_e1, p_e2, p_ec = probs
    cap = t_code + 1
    dist = np.zeros((cap + 1, cap + 1))
    dist[0, 0] = 1.0
    steps = (
        (0, 0, p_clean),
        (1, 0, p_e1),
        (0, 1, p_e2),
        (1, 1, p_ec),
    )
    for _ in range(n):
        nxt = np.zeros_like(dist)
        for w1 in range(cap + 1):
            for w2 in range(cap + 1):
                mass = dist[w1, w2]
                if mass == 0.0:
                    continue
                for d1, d2, p in steps:
                    if p == 0.0:
                        continue
                    nxt[min(cap, w1 + d1), min(cap, w2 + d2)] += mass * p
        dist = nxt
    return float(dist[cap, cap])


def duplex_fail_probability(
    model: DuplexMarkovModel, times: Sequence[float]
) -> np.ndarray:
    """Dispatch to the pure-permanent or pure-transient closed form."""
    _check_scope(model.rates)
    if model.rates.erasure_per_symbol > 0:
        return duplex_permanent_fail_probability(model, times)
    return duplex_transient_fail_probability(model, times)


def duplex_ber(model: DuplexMarkovModel, times: Sequence[float]) -> np.ndarray:
    """Closed-form BER(t) (paper Eq. 1) of the no-scrub duplex system."""
    return model.ber_factor * duplex_fail_probability(model, times)
