"""Memory-system fault models — the paper's primary contribution.

Public surface:

* :class:`~repro.memory.simplex.SimplexMarkovModel` /
  :func:`~repro.memory.simplex.simplex_model` — the RS-coded simplex
  arrangement (paper Fig. 2).
* :class:`~repro.memory.duplex.DuplexMarkovModel` /
  :func:`~repro.memory.duplex.duplex_model` — the duplex arrangement with
  erasure recovery and arbiter (paper Figs. 1, 3, 4).
* :class:`~repro.memory.rates.FaultRates` — fault environment in explicit
  units (paper quotes per-day rates and second-scale scrub periods).
* :func:`~repro.memory.ber.ber_curve` — BER(t) evaluation, paper Eq. 1.
* :mod:`~repro.memory.analytic` — exact closed forms for the no-scrub
  pure-transient / pure-permanent regimes (deep-tail accurate).
* :mod:`~repro.memory.scrubbing` — deterministic-period scrubbing
  extension.
"""

from .analytic import (
    AnalyticScopeError,
    duplex_ber,
    duplex_fail_probability,
    simplex_ber,
    simplex_fail_probability,
)
from .array import WholeMemory
from .base import FAIL, MemoryMarkovModel
from .ber import BERCurve, ber_curve
from .detection import SimplexDetectionModel, simplex_detection_model
from .detection_duplex import DuplexDetectionModel, duplex_detection_model
from .duplex import DuplexMarkovModel, duplex_model
from .mbu import (
    ClusterDistribution,
    Layout,
    SimplexMBUModel,
    mbu_layout_comparison,
    symbol_multiplicity_rates,
)
from .mission import MissionPhase, MissionProfile, orbital_profile
from .nmr import nmr_ber, nmr_read_unreliability, redundancy_sweep
from .overhead import (
    ScrubOverhead,
    min_scrub_period_for_availability,
    scrub_overhead,
)
from .rates import (
    HOURS_PER_DAY,
    HOURS_PER_MONTH,
    FaultRates,
    months_to_hours,
    per_day_to_per_hour,
    scrub_rate_from_period,
)
from .scrubbing import (
    EmbeddedScrubAnalysis,
    deterministic_scrub_ber,
    deterministic_scrub_fail_probability,
    embedded_scrub_analysis,
)
from .simplex import SimplexMarkovModel, simplex_model
from .traffic import (
    expected_failed_reads,
    time_of_first_expected_failure,
    workload_averaged_ber,
)

__all__ = [
    "FAIL",
    "MemoryMarkovModel",
    "SimplexMarkovModel",
    "simplex_model",
    "DuplexMarkovModel",
    "duplex_model",
    "FaultRates",
    "BERCurve",
    "ber_curve",
    "AnalyticScopeError",
    "simplex_ber",
    "simplex_fail_probability",
    "duplex_ber",
    "duplex_fail_probability",
    "deterministic_scrub_ber",
    "deterministic_scrub_fail_probability",
    "HOURS_PER_DAY",
    "HOURS_PER_MONTH",
    "months_to_hours",
    "per_day_to_per_hour",
    "scrub_rate_from_period",
    "SimplexDetectionModel",
    "simplex_detection_model",
    "MissionPhase",
    "MissionProfile",
    "orbital_profile",
    "nmr_ber",
    "nmr_read_unreliability",
    "redundancy_sweep",
    "ScrubOverhead",
    "scrub_overhead",
    "min_scrub_period_for_availability",
    "ClusterDistribution",
    "Layout",
    "SimplexMBUModel",
    "mbu_layout_comparison",
    "symbol_multiplicity_rates",
    "WholeMemory",
    "EmbeddedScrubAnalysis",
    "embedded_scrub_analysis",
    "expected_failed_reads",
    "workload_averaged_ber",
    "time_of_first_expected_failure",
    "DuplexDetectionModel",
    "duplex_detection_model",
]
