"""Permanent-fault detection latency (extension of paper Section 2).

The paper assumes permanent faults are *located* (by self-checking
hardware or Iddq monitoring) and can therefore be treated as erasures.
Section 2 is explicit about the transient regime before location:

    "Until the permanent fault is located, the error correction algorithm
    assumes the erroneous behavior to be caused by a random error, thus
    degrading the overall error correction capability of the provided
    code.  When the permanent fault is located, the capability of the RS
    code can be fully exploited."

The chains in :mod:`repro.memory.simplex`/:mod:`~repro.memory.duplex`
idealize location as instantaneous.  This module models the latency: an
arriving permanent fault is initially *unlocated* and costs like a random
error (weight 2); an on-line detection process locates it at rate
``detection_rate`` per unlocated fault, converting it to an erasure
(weight 1).  Scrubbing cannot remove permanent faults, located or not.

State space: ``(er, u, re)`` — located erasures, unlocated permanent
faults, random errors.  Capability: ``er + 2*(u + re) <= n - k``.

Two metrics are exposed:

* :meth:`SimplexDetectionModel.fail_probability` — the paper's
  first-passage semantics (absorb the moment capability is ever
  exceeded).  Note that under these semantics a *transit* through the
  unlocated window is already fatal, so for small codes (RS(18,16)
  tolerates only n-k = 2) detector speed barely registers; the metric is
  informative for codes with slack, e.g. RS(36,16).
* :meth:`SimplexDetectionModel.read_unreliability` — the probability a
  read issued at time ``t`` fails (occupancy of over-capability states in
  the *non-absorbing* chain).  Here location genuinely heals the word —
  ``(er, u, re) = (1, 1, 0)`` is unreadable for RS(18,16) but becomes the
  readable ``(2, 0, 0)`` once self-checking fires — so the metric cleanly
  separates fast from slow detectors and converges to the paper's
  idealized model as the detector speeds up.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .base import FAIL, MemoryMarkovModel
from .rates import FaultRates

DetectionState = Tuple[int, int, int]  # (er, u, re)


class SimplexDetectionModel(MemoryMarkovModel):
    """Simplex RS(n, k) chain with finite permanent-fault location latency.

    Parameters
    ----------
    n, k, m, rates:
        As in the base class; ``rates.erasure_per_symbol`` is the
        permanent-fault *arrival* rate.
    detection_rate:
        Rate (per hour, per unlocated fault) at which self-checking
        locates a permanent fault.  ``1/detection_rate`` is the mean
        location latency.
    """

    def __init__(
        self,
        n: int,
        k: int,
        m: int,
        rates: FaultRates,
        detection_rate: float,
    ):
        if detection_rate < 0:
            raise ValueError(
                f"detection rate must be nonnegative, got {detection_rate}"
            )
        super().__init__(n, k, m, rates)
        self.detection_rate = detection_rate

    def initial_state(self) -> DetectionState:
        return (0, 0, 0)

    def is_valid(self, er: int, u: int, re: int) -> bool:
        """Unlocated faults cost like random errors: ``er + 2(u+re) <= n-k``."""
        return er + 2 * (u + re) <= self.nsym

    def transitions(self, state) -> Iterable[Tuple[object, float]]:
        if state == FAIL:
            return []
        er, u, re = state
        clean = self.n - er - u - re
        lam_bit = self.rates.seu_per_bit
        lam_sym = self.rates.erasure_per_symbol
        moves: List[Tuple[object, float]] = []

        def emit(target: DetectionState, rate: float) -> None:
            if rate <= 0.0:
                return
            moves.append((target if self.is_valid(*target) else FAIL, rate))

        if clean > 0:
            # SEU on an untouched symbol
            emit((er, u, re + 1), self.m * lam_bit * clean)
            # unlocated permanent fault arrives on an untouched symbol
            emit((er, u + 1, re), lam_sym * clean)
        if re > 0:
            # permanent fault strikes a symbol already in random error: the
            # stuck value dominates, still unlocated
            emit((er, u + 1, re - 1), lam_sym * re)
            # scrubbing removes random errors only
            if self.rates.has_scrubbing:
                emit((er, u, 0), self.rates.scrub_rate)
        if u > 0:
            # self-checking locates one unlocated fault -> erasure
            emit((er + 1, u - 1, re), self.detection_rate * u)
        return moves

    # -- instantaneous (non-absorbing) metric ------------------------------

    def _open_transitions(self, state) -> Iterable[Tuple[object, float]]:
        """Dynamics without FAIL absorption (over-capability states live).

        Identical rates to :meth:`transitions`, but targets are never
        redirected and scrubbing only fires from readable states (a scrub
        of an unreadable word cannot decode, so nothing is written back —
        matching :class:`repro.simulator.systems.SimplexSystem`).
        """
        er, u, re = state
        clean = self.n - er - u - re
        lam_bit = self.rates.seu_per_bit
        lam_sym = self.rates.erasure_per_symbol
        moves: List[Tuple[DetectionState, float]] = []
        if clean > 0:
            moves.append(((er, u, re + 1), self.m * lam_bit * clean))
            moves.append(((er, u + 1, re), lam_sym * clean))
        if re > 0:
            moves.append(((er, u + 1, re - 1), lam_sym * re))
            if self.rates.has_scrubbing and self.is_valid(er, u, re):
                moves.append(((er, u, 0), self.rates.scrub_rate))
        if u > 0:
            moves.append(((er + 1, u - 1, re), self.detection_rate * u))
        return [(s, r) for s, r in moves if r > 0.0]

    def read_unreliability(self, times_hours) -> "np.ndarray":
        """Probability a read at each time fails (non-absorbing chain)."""
        import numpy as np

        from ..markov import build_chain

        chain = build_chain(self.initial_state(), self._open_transitions)
        probs = chain.transient(np.asarray(list(times_hours), dtype=float))
        bad = np.array(
            [not self.is_valid(*state) for state in chain.states]
        )
        return probs[:, bad].sum(axis=1)

    def read_ber(self, times_hours) -> "np.ndarray":
        """Instantaneous read BER per paper Eq. 1."""
        return self.ber_factor * self.read_unreliability(times_hours)


def simplex_detection_model(
    n: int,
    k: int,
    m: int = 8,
    seu_per_bit_day: float = 0.0,
    erasure_per_symbol_day: float = 0.0,
    scrub_period_seconds: float | None = None,
    mean_detection_hours: float = 1.0,
) -> SimplexDetectionModel:
    """Convenience constructor; latency given as a mean location time.

    ``mean_detection_hours = 0`` reproduces instantaneous location (use
    :func:`repro.memory.simplex_model` for the exact paper chain — this
    constructor maps 0 to a very fast but finite detector).
    """
    rates = FaultRates.from_paper_units(
        seu_per_bit_day=seu_per_bit_day,
        erasure_per_symbol_day=erasure_per_symbol_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    if mean_detection_hours < 0:
        raise ValueError("mean detection latency must be nonnegative")
    detection_rate = (
        1e9 if mean_detection_hours == 0 else 1.0 / mean_detection_hours
    )
    return SimplexDetectionModel(n, k, m, rates, detection_rate)
