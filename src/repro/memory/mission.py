"""Mission profiles: piecewise-constant fault environments (extension).

Space missions do not see one SEU rate: South Atlantic Anomaly passes,
solar flares and varying shielding change the environment by orders of
magnitude on hour-to-day scales.  The paper's constant-rate chains extend
naturally to a *piecewise-constant* environment: within each phase the
generator is constant, so the exact solution is a product of phase
propagators — computed here with the same uniformization primitive the
steady solvers use.

The state space must be shared across phases, so a profile is solved on
the union chain: the model rebuilt with every phase's rates active
determines reachability, and each phase contributes its own generator on
that state set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

import numpy as np

from ..markov import CTMC, build_chain
from ..markov.solvers import uniformization_propagate
from .base import FAIL, MemoryMarkovModel
from .duplex import DuplexMarkovModel
from .rates import FaultRates
from .simplex import SimplexMarkovModel


@dataclass(frozen=True)
class MissionPhase:
    """One leg of a mission with a constant fault environment."""

    name: str
    duration_hours: float
    rates: FaultRates

    def __post_init__(self) -> None:
        # ``not (x > 0)`` instead of ``x <= 0`` so NaN is rejected too —
        # a NaN leg would silently poison every phase propagator.
        if not (self.duration_hours > 0 and np.isfinite(self.duration_hours)):
            raise ValueError(
                f"phase {self.name!r} needs positive finite duration, "
                f"got {self.duration_hours}"
            )


class MissionProfile:
    """A sequence of phases applied to one memory arrangement.

    Parameters
    ----------
    model_cls:
        :class:`SimplexMarkovModel` or :class:`DuplexMarkovModel` (any
        :class:`MemoryMarkovModel` subclass constructible as
        ``cls(n, k, m, rates)``).
    n, k, m:
        Code parameters shared by all phases.
    phases:
        Ordered mission legs.  The profile repeats from the first phase
        if evaluated past its total duration (periodic orbits).
    """

    def __init__(
        self,
        model_cls: Type[MemoryMarkovModel],
        n: int,
        k: int,
        m: int,
        phases: Sequence[MissionPhase],
    ):
        if not phases:
            raise ValueError("a mission needs at least one phase")
        # Validate code parameters up front: k and m feed ``ber_factor``
        # as divisors, and a degenerate code would otherwise surface as a
        # ZeroDivisionError deep inside a BER sweep.
        if m < 1:
            raise ValueError(f"bits per symbol m must be >= 1, got {m}")
        if not 0 < k < n:
            raise ValueError(
                f"code parameters need 0 < k < n, got n={n}, k={k}"
            )
        self.model_cls = model_cls
        self.n, self.k, self.m = n, k, m
        self.phases = list(phases)
        self._chain, self._phase_rates = self._build_union_chain()

    # -- construction -------------------------------------------------------

    def _build_union_chain(self) -> Tuple[CTMC, List[Dict]]:
        """Explore reachability under the *union* environment, then build
        per-phase rate matrices on that shared state set."""
        union_rates = FaultRates(
            seu_per_bit=max(p.rates.seu_per_bit for p in self.phases),
            erasure_per_symbol=max(
                p.rates.erasure_per_symbol for p in self.phases
            ),
            scrub_rate=max(p.rates.scrub_rate for p in self.phases),
        )
        union_model = self.model_cls(self.n, self.k, self.m, union_rates)
        chain = build_chain(
            union_model.initial_state(), union_model.transitions
        )
        phase_matrices = []
        for phase in self.phases:
            model = self.model_cls(self.n, self.k, self.m, phase.rates)
            triples = []
            for state in chain.states:
                if state == FAIL:
                    continue
                for nxt, rate in model.transitions(state):
                    triples.append((state, nxt, rate))
            phase_matrices.append(
                CTMC(chain.states, triples, union_model.initial_state())
            )
        return chain, phase_matrices

    @property
    def total_duration_hours(self) -> float:
        return sum(p.duration_hours for p in self.phases)

    @property
    def ber_factor(self) -> float:
        return self.m * (self.n - self.k) / self.k

    # -- solution -------------------------------------------------------

    def fail_probability(self, times_hours: Sequence[float]) -> np.ndarray:
        """``P_Fail(t)``; the phase schedule repeats cyclically."""
        times = np.asarray(list(times_hours), dtype=float)
        if np.any(times < 0):
            raise ValueError("times must be nonnegative")
        order = np.argsort(times)
        out = np.zeros(len(times))
        fail_idx = self._chain.index.get(FAIL)

        p = self._chain.p0.copy()
        t_now = 0.0
        phase_idx = 0
        phase_left = self.phases[0].duration_hours
        for pos in order:
            target = times[pos]
            while t_now < target:
                step = min(phase_left, target - t_now)
                p = uniformization_propagate(
                    self._phase_rates[phase_idx].rate_matrix, p, step
                )
                t_now += step
                phase_left -= step
                if phase_left <= 1e-12:
                    phase_idx = (phase_idx + 1) % len(self.phases)
                    phase_left = self.phases[phase_idx].duration_hours
            out[pos] = 0.0 if fail_idx is None else p[fail_idx]
        return out

    def ber(self, times_hours: Sequence[float]) -> np.ndarray:
        """BER(t) per paper Eq. 1 under the mission schedule."""
        return self.ber_factor * self.fail_probability(times_hours)

    def equivalent_average_model(self) -> MemoryMarkovModel:
        """Constant-rate model with the duration-weighted average rates.

        The standard first-order approximation mission planners use; the
        benchmark ``bench_mission_profile.py`` quantifies how much it
        misses versus the exact piecewise solution.
        """
        total = self.total_duration_hours
        avg = FaultRates(
            seu_per_bit=sum(
                p.rates.seu_per_bit * p.duration_hours for p in self.phases
            )
            / total,
            erasure_per_symbol=sum(
                p.rates.erasure_per_symbol * p.duration_hours
                for p in self.phases
            )
            / total,
            scrub_rate=sum(
                p.rates.scrub_rate * p.duration_hours for p in self.phases
            )
            / total,
        )
        return self.model_cls(self.n, self.k, self.m, avg)


def orbital_profile(
    model_cls: Type[MemoryMarkovModel] = DuplexMarkovModel,
    n: int = 18,
    k: int = 16,
    m: int = 8,
    quiet_seu_per_bit_day: float = 7.3e-7,
    saa_seu_per_bit_day: float = 1.7e-5,
    orbit_hours: float = 1.6,
    saa_fraction: float = 0.15,
    scrub_period_seconds: float | None = 3600.0,
) -> MissionProfile:
    """A LEO-style two-phase orbit: quiet leg + South Atlantic Anomaly leg.

    Defaults bracket the paper's SEU sweep (quiet = its lowest rate, SAA
    = its worst case) over a 96-minute orbit with a 15% SAA dwell.
    """
    if not 0 < saa_fraction < 1:
        raise ValueError("saa_fraction must be in (0, 1)")
    quiet = FaultRates.from_paper_units(
        seu_per_bit_day=quiet_seu_per_bit_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    saa = FaultRates.from_paper_units(
        seu_per_bit_day=saa_seu_per_bit_day,
        scrub_period_seconds=scrub_period_seconds,
    )
    return MissionProfile(
        model_cls,
        n,
        k,
        m,
        [
            MissionPhase("quiet", orbit_hours * (1 - saa_fraction), quiet),
            MissionPhase("saa", orbit_hours * saa_fraction, saa),
        ],
    )
