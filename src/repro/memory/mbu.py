"""Multi-bit upsets and physical layout (extension beyond the paper).

The paper treats every SEU as a single bit flip.  In real (and especially
scaled) memories one particle strike upsets a contiguous *cluster* of
physical cells, and the physical-to-logical layout decides how many RS
symbols one strike corrupts:

* ``CONTIGUOUS`` — a symbol's m bits are physically adjacent.  A cluster
  of ``c`` cells straddles at most ``1 + (c - 1 + m - 1) // m`` symbols
  (2 for any cluster up to m+1 cells) — the *chipkill* intuition: keep a
  symbol's bits together so one strike is one (or two) symbol errors.
* ``BIT_INTERLEAVED`` — adjacent physical cells cycle through symbols
  (cell ``i`` belongs to symbol ``i mod n``).  Good for bit-oriented
  codes (Hamming), *catastrophic* for a symbol-oriented RS code: a
  cluster of ``c`` cells corrupts ``c`` distinct symbols.
* ``WORD_INTERLEAVED(depth)`` — adjacent cells belong to *different
  codewords*; a cluster of ``c <= depth`` cells touches each word at most
  once.  The strongest option, at the cost of a wider access path.

The word-level chain generalizes the paper's simplex model with
multi-symbol error arrivals: from ``S(er, re)`` an MBU that corrupts
``j`` clean symbols moves to ``S(er, re + j)`` (or FAIL).  The chance of
landing entirely on clean symbols is approximated by the hypergeometric
factor ``C(clean, j) / C(n, j)``, which reduces exactly to the paper's
``(n - er - re)/n`` thinning at ``j = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Tuple

from .base import FAIL, MemoryMarkovModel
from .rates import FaultRates


class Layout(Enum):
    """Physical-to-logical placement of one codeword's bits."""

    CONTIGUOUS = "contiguous"
    BIT_INTERLEAVED = "bit_interleaved"
    WORD_INTERLEAVED = "word_interleaved"


@dataclass(frozen=True)
class ClusterDistribution:
    """Distribution of MBU cluster sizes (cells upset per strike).

    ``sizes[s]`` is the probability a strike upsets ``s`` contiguous
    cells.  A representative scaled-technology default is provided by
    :meth:`typical`.
    """

    sizes: Mapping[int, float]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("cluster distribution is empty")
        total = 0.0
        for size, p in self.sizes.items():
            if size < 1:
                raise ValueError(f"cluster size must be >= 1, got {size}")
            if p < 0:
                raise ValueError(f"negative probability for size {size}")
            total += p
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError(f"cluster probabilities sum to {total}, not 1")

    @classmethod
    def single_bit(cls) -> "ClusterDistribution":
        """The paper's assumption: every strike upsets exactly one cell."""
        return cls({1: 1.0})

    @classmethod
    def typical(cls) -> "ClusterDistribution":
        """A representative modern-technology MBU mix."""
        return cls({1: 0.82, 2: 0.10, 3: 0.05, 4: 0.03})

    @property
    def max_size(self) -> int:
        return max(self.sizes)

    @property
    def mean_size(self) -> float:
        return sum(s * p for s, p in self.sizes.items())


def _word_cells(n: int, m: int, layout: Layout, depth: int) -> List[Tuple[int, int]]:
    """Physical cells of one target word as ``(position, symbol)`` pairs."""
    cells = []
    for logical in range(n * m):
        if layout is Layout.CONTIGUOUS:
            position, symbol = logical, logical // m
        elif layout is Layout.BIT_INTERLEAVED:
            position, symbol = logical, logical % n
        else:  # WORD_INTERLEAVED: our word's cells every `depth` positions
            position, symbol = logical * depth, logical // m
        cells.append((position, symbol))
    return cells


def symbol_multiplicity_rates(
    n: int,
    m: int,
    layout: Layout,
    clusters: ClusterDistribution,
    depth: int = 4,
) -> Dict[int, float]:
    """Expected strikes per word hitting exactly ``j`` distinct symbols.

    Returns ``{j: weight}`` where ``weight`` is the number of (anchor,
    size) combinations affecting ``j`` symbols of the target word,
    weighted by the cluster-size probabilities.  Multiplying by the
    per-cell strike rate gives the transition rate of the ``+j`` arrival.
    The count is exact: anchors range over every physical position whose
    span can intersect the word.
    """
    if layout is Layout.WORD_INTERLEAVED and depth < 1:
        raise ValueError("word interleaving depth must be >= 1")
    cell_symbol = dict(_word_cells(n, m, layout, depth))
    max_pos = max(cell_symbol)
    weights: Dict[int, float] = {}
    for size, prob in clusters.sizes.items():
        if prob == 0.0:
            continue
        for anchor in range(-(size - 1), max_pos + 1):
            hit = {
                cell_symbol[p]
                for p in range(anchor, anchor + size)
                if p in cell_symbol
            }
            j = len(hit)
            if j:
                weights[j] = weights.get(j, 0.0) + prob
    return weights


class SimplexMBUModel(MemoryMarkovModel):
    """Simplex RS(n, k) chain under clustered (multi-bit) upsets.

    Parameters
    ----------
    n, k, m, rates:
        As usual; ``rates.seu_per_bit`` is reinterpreted as the *strike*
        rate per physical cell (every strike upsets a whole cluster).
    layout:
        Physical placement of the word's bits.
    clusters:
        MBU cluster-size distribution.
    depth:
        Interleaving depth for ``Layout.WORD_INTERLEAVED``.
    """

    def __init__(
        self,
        n: int,
        k: int,
        m: int,
        rates: FaultRates,
        layout: Layout = Layout.CONTIGUOUS,
        clusters: ClusterDistribution | None = None,
        depth: int = 4,
    ):
        super().__init__(n, k, m, rates)
        self.layout = layout
        self.clusters = clusters or ClusterDistribution.single_bit()
        self.depth = depth
        self._multiplicity = symbol_multiplicity_rates(
            n, m, layout, self.clusters, depth
        )

    def initial_state(self) -> Tuple[int, int]:
        return (0, 0)

    def is_valid(self, er: int, re: int) -> bool:
        return er + 2 * re <= self.nsym

    def transitions(self, state) -> Iterable[Tuple[object, float]]:
        if state == FAIL:
            return []
        er, re = state
        clean = self.n - er - re
        strike = self.rates.seu_per_bit  # per physical cell
        lam_sym = self.rates.erasure_per_symbol
        moves: List[Tuple[object, float]] = []

        def emit(target: Tuple[int, int], rate: float) -> None:
            if rate <= 0.0:
                return
            moves.append((target if self.is_valid(*target) else FAIL, rate))

        if strike > 0.0 and clean > 0:
            for j, weight in self._multiplicity.items():
                if j > clean:
                    continue
                thinning = math.comb(clean, j) / math.comb(self.n, j)
                emit((er, re + j), strike * weight * thinning)
        if clean > 0:
            emit((er + 1, re), lam_sym * clean)
        if re > 0:
            emit((er + 1, re - 1), lam_sym * re)
            if self.rates.has_scrubbing:
                emit((er, 0), self.rates.scrub_rate)
        return moves


def mbu_layout_comparison(
    n: int,
    k: int,
    strike_rate_per_cell_day: float,
    times_hours,
    m: int = 8,
    clusters: ClusterDistribution | None = None,
    depth: int = 4,
) -> Dict[str, "np.ndarray"]:
    """BER(t) of the three layouts under the same strike environment."""
    import numpy as np  # local: keep module import light

    clusters = clusters or ClusterDistribution.typical()
    rates = FaultRates.from_paper_units(seu_per_bit_day=strike_rate_per_cell_day)
    out: Dict[str, np.ndarray] = {}
    for layout in Layout:
        model = SimplexMBUModel(
            n, k, m, rates, layout=layout, clusters=clusters, depth=depth
        )
        out[layout.value] = model.ber(times_hours)
    return out
