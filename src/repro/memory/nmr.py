"""N-modular redundancy with symbol voting (extension of the duplex idea).

The paper's duplex is the N = 2 point of a family: N replicated modules,
each RS(n, k)-coded, fronted by a voter that (a) masks erasures that do
not strike every replica of a symbol and (b) takes a per-symbol majority
among the non-erased replicas.  This module generalizes the analysis.

Per-symbol semantics (conservative, in the paper's style — the "masking
error" of two SEUs forging identical wrong symbols is neglected):

* ``E`` replicas of the symbol erased, ``R`` in random error, the other
  ``N - E - R`` correct;
* the position is an **erasure** for the decoder iff ``E = N`` (no
  replica left to vote);
* the position is a **random error** iff some wrong value survives the
  vote: ``R >= 1`` and the correct multiplicity ``N - E - R`` is not a
  strict plurality, i.e. ``N - E - R <= 1`` (ties are counted as errors);
* otherwise the voted symbol is correct.

The word then fails a read iff ``er + 2*re > n - k`` as usual.

Because the voter can *heal* a symbol over time (an errored replica being
erased can restore the correct plurality), per-symbol damage is not
monotone and the closed form below is the **point-in-time read
unreliability** — the probability a read issued at time ``t`` fails.
This matches the paper's own reading semantics ("a read operation
corresponds to the so-called stopping time") and is exact for the
monotone regimes (pure permanent faults; N <= 2 transients).  The
codec-level Monte-Carlo validator in :mod:`repro.simulator.voting`
measures exactly this quantity.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from .rates import FaultRates


def replica_symbol_occupancies(
    m: int, rates: FaultRates, t: float
) -> tuple[float, float, float]:
    """(correct, error, erased) occupancies of one replica symbol at ``t``.

    Per-replica chain: clean --mλ--> error, clean/error --λe--> erased
    (a permanent fault dominates whatever the cell held).
    """
    flip = m * rates.seu_per_bit
    lam_e = rates.erasure_per_symbol
    p_clean = math.exp(-(flip + lam_e) * t)
    p_erased = -math.expm1(-lam_e * t)
    p_error = math.exp(-lam_e * t) - p_clean  # = e^{-λe t}(1 - e^{-mλ t})
    return p_clean, p_error, p_erased


def symbol_damage_pmf(
    num_modules: int, m: int, rates: FaultRates, t: float
) -> List[float]:
    """pmf over the decoder-facing damage weight {0, 1, 2} of one position.

    Weight 1 = erasure (all replicas erased), weight 2 = random error
    (wrong value survives the vote), weight 0 = voted correct.
    """
    if num_modules < 1:
        raise ValueError("need at least one module")
    p_c, p_e, p_x = replica_symbol_occupancies(m, rates, t)
    n_mod = num_modules
    w = [0.0, 0.0, 0.0]
    # trinomial over (E erased, R errored) replicas
    for erased in range(n_mod + 1):
        for errored in range(n_mod - erased + 1):
            correct = n_mod - erased - errored
            prob = (
                math.comb(n_mod, erased)
                * math.comb(n_mod - erased, errored)
                * p_x**erased
                * p_e**errored
                * p_c**correct
            )
            if erased == n_mod:
                w[1] += prob
            elif errored >= 1 and correct <= 1:
                w[2] += prob
            else:
                w[0] += prob
    return w


def _weight_tail(n: int, pmf: Sequence[float], threshold: int) -> float:
    """``P(sum of n iid damage weights > threshold)`` by convolution DP.

    Positive accumulations throughout — relative accuracy holds to the
    double-precision underflow floor.
    """
    cap = threshold + 1
    dist = np.zeros(cap + 1)
    dist[0] = 1.0
    weights = [(wt, p) for wt, p in enumerate(pmf) if p > 0.0]
    for _ in range(n):
        nxt = np.zeros(cap + 1)
        for total in range(cap + 1):
            mass = dist[total]
            if mass == 0.0:
                continue
            for wt, p in weights:
                nxt[min(cap, total + wt)] += mass * p
        dist = nxt
    return float(dist[cap])


def nmr_read_unreliability(
    n: int,
    k: int,
    num_modules: int,
    rates: FaultRates,
    times_hours: Sequence[float],
    m: int = 8,
) -> np.ndarray:
    """Probability a read at each time fails, for an N-modular arrangement.

    ``num_modules = 1`` is the simplex read (no voting, every erasure and
    error hits the decoder directly); ``2`` approximates the paper's
    duplex under read-at-t semantics; ``3`` is classic TMR + RS.
    """
    if not 0 < k < n:
        raise ValueError(f"need 0 < k < n, got n={n}, k={k}")
    if rates.has_scrubbing:
        raise ValueError(
            "the closed-form NMR analysis does not model scrubbing; "
            "use the Monte-Carlo simulator for scrubbed NMR systems"
        )
    times = np.asarray(list(times_hours), dtype=float)
    out = np.zeros(len(times))
    nsym = n - k
    for i, t in enumerate(times):
        pmf = symbol_damage_pmf(num_modules, m, rates, float(t))
        out[i] = _weight_tail(n, pmf, nsym)
    return out


def nmr_ber(
    n: int,
    k: int,
    num_modules: int,
    rates: FaultRates,
    times_hours: Sequence[float],
    m: int = 8,
) -> np.ndarray:
    """Read BER per paper Eq. 1 for the N-modular arrangement."""
    factor = m * (n - k) / k
    return factor * nmr_read_unreliability(
        n, k, num_modules, rates, times_hours, m=m
    )


def redundancy_sweep(
    n: int,
    k: int,
    rates: FaultRates,
    t_hours: float,
    max_modules: int = 5,
    m: int = 8,
) -> List[tuple[int, float]]:
    """Read unreliability at ``t_hours`` for N = 1 .. max_modules.

    The design-space curve behind "how many replicas are worth their
    area": each extra module costs a full memory plus a decoder
    (:mod:`repro.rs.complexity`) and buys the returned reliability step.
    """
    return [
        (
            n_mod,
            float(
                nmr_read_unreliability(n, k, n_mod, rates, [t_hours], m=m)[0]
            ),
        )
        for n_mod in range(1, max_modules + 1)
    ]
