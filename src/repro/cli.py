"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``figure fig5..fig10 [--points N] [--csv DIR]`` — regenerate one (or
  ``all``) of the paper's figures as an ASCII table, optionally exporting
  CSV data.
* ``ber`` — evaluate BER(t) for an ad-hoc configuration (arrangement,
  code, rates, scrub period).
* ``complexity`` — the Section 6 decoder latency/area table.
* ``validate`` — quick Monte-Carlo cross-check of the chains at an
  MC-visible rate.
* ``scrub-design`` — the largest scrubbing period meeting a BER budget,
  with its availability/bandwidth overhead.
* ``report`` — regenerate every artifact into one markdown report.
* ``sensitivity`` — BER elasticities of a configuration.
* ``campaign`` — bulk model-vs-simulation validation with supervised
  workers, chunk-level checkpoint/resume (``--checkpoint``), run
  manifests (``--manifest``), deterministic fault injection
  (``--chaos``, dev), a JSONL span/event/metric trace (``--trace``),
  and live per-chunk heartbeats with ETA (``--progress``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reed-Solomon coded fault-tolerant memory analysis "
            "(DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("ids", nargs="+", help="fig5..fig10 or 'all'")
    fig.add_argument("--points", type=int, default=13, help="time grid size")
    fig.add_argument("--csv", metavar="DIR", help="also export CSV data")

    ber = sub.add_parser("ber", help="BER(t) of an ad-hoc configuration")
    ber.add_argument(
        "--arrangement", choices=("simplex", "duplex"), default="simplex"
    )
    ber.add_argument("--n", type=int, default=18)
    ber.add_argument("--k", type=int, default=16)
    ber.add_argument("--m", type=int, default=8)
    ber.add_argument(
        "--seu", type=float, default=0.0, help="SEU rate, errors/bit/day"
    )
    ber.add_argument(
        "--permanent",
        type=float,
        default=0.0,
        help="permanent fault rate, /symbol/day",
    )
    ber.add_argument(
        "--tsc", type=float, default=None, help="scrub period, seconds"
    )
    ber.add_argument(
        "--hours", type=float, default=48.0, help="storage horizon, hours"
    )
    ber.add_argument("--points", type=int, default=13)

    sub.add_parser("complexity", help="Section 6 decoder cost table")

    val = sub.add_parser("validate", help="Monte-Carlo cross-check")
    val.add_argument("--trials", type=int, default=1000)
    val.add_argument("--seed", type=int, default=2005)
    val.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the batch codec-MC path (results are "
        "seed-deterministic regardless of this value)",
    )
    val.add_argument("--chunk-size", type=int, default=512)

    report = sub.add_parser(
        "report", help="write the full markdown reproduction report"
    )
    report.add_argument("-o", "--output", default="reproduction_report.md")
    report.add_argument("--points", type=int, default=13)

    sens = sub.add_parser(
        "sensitivity", help="BER elasticities of a configuration"
    )
    sens.add_argument(
        "--arrangement", choices=("simplex", "duplex"), default="duplex"
    )
    sens.add_argument("--n", type=int, default=18)
    sens.add_argument("--k", type=int, default=16)
    sens.add_argument("--seu", type=float, default=1.7e-5)
    sens.add_argument("--permanent", type=float, default=0.0)
    sens.add_argument("--tsc", type=float, default=None)
    sens.add_argument("--hours", type=float, default=48.0)

    scen = sub.add_parser(
        "scenario", help="run JSON scenario file(s)"
    )
    scen.add_argument("path", help="JSON file: one scenario or a list")

    camp = sub.add_parser(
        "campaign", help="bulk model-vs-simulation validation campaign"
    )
    camp.add_argument("--trials", type=int, default=300)
    camp.add_argument("--seed", type=int, default=2005)
    camp.add_argument(
        "--engine",
        choices=("batch", "scalar"),
        default="batch",
        help="trial executor: vectorized batch codec (default) or the "
        "one-trial-at-a-time scalar reference",
    )
    camp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the batch engine (estimates are "
        "seed-deterministic regardless of this value)",
    )
    camp.add_argument("--chunk-size", type=int, default=512)
    camp.add_argument(
        "--perf",
        action="store_true",
        help="print batch-engine work/throughput counters",
    )
    camp.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append-only JSONL journal of completed chunks; rerunning "
        "the same command against an existing journal resumes it with "
        "bit-identical results (batch engine only)",
    )
    camp.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a machine-readable JSON run manifest (seed, engine, "
        "retry/fallback counts, git describe, wall clock, results)",
    )
    camp.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline; an overdue worker is presumed hung, "
        "killed, and its chunk retried (default: no timeout)",
    )
    camp.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per chunk on the batch engine before degrading "
        "that chunk to the scalar engine (default 3)",
    )
    camp.add_argument(
        "--chaos",
        metavar="SPEC",
        help="[dev] deterministic fault injection, e.g. "
        "'crash@0;hang@2:30;poison@1;slow@*:0.1' — proves the "
        "supervisor's retry/fallback machinery end to end",
    )
    camp.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL observability trace: solver spans (terms "
        "used, tail bounds, expm cache hits), chunk heartbeat events "
        "with ETA, and a metrics snapshot (chunk-latency histogram)",
    )
    camp.add_argument(
        "--progress",
        action="store_true",
        help="print per-chunk heartbeats (done/total, rate, ETA) to "
        "stderr as the campaign runs (batch engine only)",
    )

    design = sub.add_parser(
        "scrub-design", help="slowest scrub meeting a BER budget"
    )
    design.add_argument("--budget", type=float, default=1e-6)
    design.add_argument("--seu", type=float, default=1.7e-5)
    design.add_argument("--hours", type=float, default=48.0)
    design.add_argument("--words", type=int, default=1 << 20)
    design.add_argument("--clock-mhz", type=float, default=50.0)
    return parser


def cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import ALL_FIGURES, render_ber_table
    from .analysis.export import experiment_to_csv
    from .memory import HOURS_PER_MONTH

    ids = list(ALL_FIGURES) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for fig_id in ids:
        result = ALL_FIGURES[fig_id](points=args.points)
        monthly = fig_id in ("fig8", "fig9", "fig10")
        scale = HOURS_PER_MONTH if monthly else 1.0
        label = "months" if monthly else "hours"
        print(f"\n{fig_id}: {result.title}")
        print(render_ber_table(result.curves, time_label=label, time_scale=scale))
        failed = result.failed_expectations()
        print(
            "expectations: "
            + ("all hold" if not failed else f"FAILED - {failed}")
        )
        if args.csv:
            path = experiment_to_csv(
                result, args.csv, time_label=label, time_scale=scale
            )
            print(f"csv: {path}")
        if failed:
            return 1
    return 0


def cmd_ber(args: argparse.Namespace) -> int:
    from .analysis import render_ber_table
    from .memory import ber_curve, duplex_model, simplex_model

    factory = simplex_model if args.arrangement == "simplex" else duplex_model
    model = factory(
        args.n,
        args.k,
        m=args.m,
        seu_per_bit_day=args.seu,
        erasure_per_symbol_day=args.permanent,
        scrub_period_seconds=args.tsc,
    )
    times = np.linspace(0.0, args.hours, args.points)
    curve = ber_curve(model, times, label=args.arrangement)
    print(render_ber_table([curve]))
    print(f"\nBER({args.hours:g} h) = {curve.final:.6e}")
    return 0


def cmd_complexity(_args: argparse.Namespace) -> int:
    from .analysis import render_cost_table, table_decoder_complexity

    print(render_cost_table(table_decoder_complexity()))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .memory import duplex_model, simplex_model
    from .rs import RSCode
    from .simulator import (
        gillespie_fail_probability,
        simulate_fail_probability_batched,
    )

    rng = np.random.default_rng(args.seed)
    lam_day = 2e-3
    code = RSCode(18, 16, m=8)
    ok = True
    for name, model in (
        ("simplex", simplex_model(18, 16, seu_per_bit_day=lam_day)),
        ("duplex", duplex_model(18, 16, seu_per_bit_day=lam_day)),
    ):
        p = model.fail_probability([48.0])[0]
        ssa = gillespie_fail_probability(model, 48.0, args.trials, rng)
        mc = simulate_fail_probability_batched(
            name,
            code,
            48.0,
            seu_per_bit=lam_day / 24.0,
            erasure_per_symbol=0.0,
            trials=max(200, args.trials // 4),
            seed=args.seed,
            chunk_size=args.chunk_size,
            workers=args.workers,
        )
        agree = ssa.consistent_with(p)
        ok = ok and agree
        print(
            f"{name:8s} chain={p:.4f}  SSA={ssa.probability:.4f} "
            f"[{ssa.ci_low:.4f},{ssa.ci_high:.4f}] "
            f"{'OK' if agree else 'DISAGREES'}  codec-MC={mc.probability:.4f}"
        )
    print(
        "note: the duplex codec-MC sits below its chain by design - the "
        "paper's either-word fail rule is conservative (see EXPERIMENTS.md)."
    )
    return 0 if ok else 1


def cmd_scrub_design(args: argparse.Namespace) -> int:
    from .analysis import max_scrub_period_for_budget
    from .memory import scrub_overhead

    period = max_scrub_period_for_budget(
        18,
        16,
        seu_per_bit_day=args.seu,
        budget=args.budget,
        horizon_hours=args.hours,
    )
    overhead = scrub_overhead(
        18,
        16,
        num_words=args.words,
        scrub_period_seconds=period,
        clock_hz=args.clock_mhz * 1e6,
        num_decoders=2,
    )
    print(
        f"budget {args.budget:g} over {args.hours:g} h at "
        f"lambda={args.seu:g}/bit/day:"
    )
    print(f"  slowest admissible Tsc : {period:.0f} s ({period / 60:.0f} min)")
    print(f"  scrub pass duration    : {overhead.pass_seconds:.3f} s")
    print(f"  availability           : {overhead.availability:.6f}")
    print(
        f"  scrub bandwidth        : "
        f"{overhead.scrub_bandwidth_bits_per_s / 8e3:.1f} kB/s"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis import write_report

    path = write_report(args.output, points=args.points)
    print(f"wrote {path}")
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis import memory_system_sensitivities

    results = memory_system_sensitivities(
        args.arrangement,
        args.n,
        args.k,
        args.hours,
        seu_per_bit_day=args.seu,
        erasure_per_symbol_day=args.permanent,
        scrub_period_seconds=args.tsc,
    )
    if not results:
        print("no active parameters to differentiate")
        return 1
    print(
        f"{args.arrangement} RS({args.n},{args.k}), "
        f"BER({args.hours:g} h) = {results[0].base_ber:.3e}"
    )
    for s in results:
        print(
            f"  {s.parameter:<24} base={s.base_value:<12g} "
            f"elasticity={s.elasticity:+.3f}"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .analysis import render_ber_table
    from .analysis.scenario import run_scenario_suite

    results = run_scenario_suite(args.path)
    failed_budget = False
    for result in results:
        print(result.summary())
        print(render_ber_table([result.curve]))
        print()
        if result.meets_budget is False:
            failed_budget = True
    return 1 if failed_budget else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import time as _time

    from .obs import metrics as obs_metrics
    from .obs import trace as obs_trace
    from .obs.progress import ProgressTracker, format_progress
    from .perf import PerfCounters
    from .runtime import (
        CheckpointJournal,
        CheckpointMismatchError,
        RetryPolicy,
        RuntimeConfig,
        build_manifest,
        chaos_from_arg,
        write_manifest,
    )
    from .simulator import (
        campaign_fingerprint,
        campaign_summary,
        default_validation_campaign,
        run_campaign,
    )

    if args.checkpoint and args.engine != "batch":
        print(
            "--checkpoint requires --engine batch (the scalar engine has "
            "no chunk structure to journal)",
            file=sys.stderr,
        )
        return 2
    if args.progress and args.engine != "batch":
        print(
            "--progress requires --engine batch (heartbeats are emitted "
            "per chunk; the scalar engine has none)",
            file=sys.stderr,
        )
        return 2
    if args.max_retries < 1:
        print("--max-retries must be >= 1", file=sys.stderr)
        return 2
    try:
        chaos = chaos_from_arg(args.chaos)
    except ValueError as exc:
        print(f"bad --chaos spec: {exc}", file=sys.stderr)
        return 2

    cells = default_validation_campaign()
    counters = PerfCounters()
    journal = CheckpointJournal(args.checkpoint) if args.checkpoint else None
    resumed = journal is not None and journal.n_chunks > 0
    if resumed:
        print(
            f"resuming from {args.checkpoint}: "
            f"{journal.n_chunks} chunk(s) already journaled"
        )

    collector = obs_trace.TraceCollector() if args.trace else None
    if collector is not None:
        obs_trace.install_collector(collector)
    heartbeats: list = []

    def on_progress(event) -> None:
        heartbeats.append(event.as_dict())
        if args.progress:
            print(f"  {format_progress(event)}", file=sys.stderr)

    tracker = None
    if args.engine == "batch" and (args.progress or args.trace or args.manifest):
        tracker = ProgressTracker(
            total=args.trials * len(cells), unit="trials"
        )
    runtime = RuntimeConfig(
        retry=RetryPolicy(max_attempts=args.max_retries),
        chunk_timeout=args.chunk_timeout,
        chaos=chaos,
        journal=journal,
        progress=tracker,
        on_progress=on_progress if tracker is not None else None,
    )
    t0 = _time.perf_counter()
    try:
        rows = run_campaign(
            cells,
            trials=args.trials,
            base_seed=args.seed,
            engine=args.engine,
            workers=args.workers,
            chunk_size=args.chunk_size,
            counters=counters,
            runtime=runtime if args.engine == "batch" else None,
        )
    except CheckpointMismatchError as exc:
        print(f"checkpoint refused: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        if journal is not None:
            print(
                f"\ninterrupted; {journal.n_chunks} completed chunk(s) "
                f"checkpointed in {args.checkpoint} — rerun the same "
                "command to resume",
                file=sys.stderr,
            )
        else:
            print(
                "\ninterrupted (no --checkpoint given; progress lost)",
                file=sys.stderr,
            )
        return 130
    finally:
        if journal is not None:
            journal.close()
        # Mirror the counters into the metrics registry so both the
        # trace export and the manifest carry one coherent snapshot.
        counters.publish(obs_metrics.get_registry())
        if collector is not None:
            obs_trace.install_collector(None)
            trace_path = collector.export_jsonl(
                args.trace, metrics=obs_metrics.get_registry().snapshot()
            )
            print(f"trace: {trace_path}", file=sys.stderr)
    wall = _time.perf_counter() - t0

    for row in rows:
        mark = "OK " if row.consistent else "!! "
        est = row.estimate
        print(
            f"{mark}{row.cell.label():<40} model={row.model_fail_probability:.4f} "
            f"mc={est.probability:.4f} [{est.ci_low:.4f},{est.ci_high:.4f}]"
        )
    summary = campaign_summary(rows)
    print()
    all_ok = True
    for arrangement, (ok, total) in summary.items():
        print(f"{arrangement}: {ok}/{total} cells consistent")
        all_ok = all_ok and ok == total
    if counters.had_faults:
        print("\nresilience:")
        print(counters.resilience_summary())
    if args.perf and args.engine == "batch":
        print(f"\nbatch engine ({args.workers} worker(s)):")
        print(counters.summary())
    if args.manifest:
        manifest = build_manifest(
            command="campaign",
            fingerprint=campaign_fingerprint(
                cells,
                18,
                16,
                8,
                48.0,
                args.trials,
                args.seed,
                args.engine,
                args.chunk_size,
            ),
            rows=rows,
            counters=counters,
            events=runtime.events,
            wall_clock_seconds=wall,
            resumed=resumed,
            checkpoint_path=args.checkpoint,
            progress_events=heartbeats,
            metrics=obs_metrics.get_registry().snapshot(),
        )
        path = write_manifest(args.manifest, manifest)
        print(f"manifest: {path}")
    return 0 if all_ok else 1


_COMMANDS = {
    "figure": cmd_figure,
    "report": cmd_report,
    "campaign": cmd_campaign,
    "scenario": cmd_scenario,
    "sensitivity": cmd_sensitivity,
    "ber": cmd_ber,
    "complexity": cmd_complexity,
    "validate": cmd_validate,
    "scrub-design": cmd_scrub_design,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
