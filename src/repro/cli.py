"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``figure fig5..fig10 [--points N] [--csv DIR]`` — regenerate one (or
  ``all``) of the paper's figures as an ASCII table, optionally exporting
  CSV data.
* ``ber`` — evaluate BER(t) for an ad-hoc configuration (arrangement,
  code, rates, scrub period).
* ``complexity`` — the Section 6 decoder latency/area table.
* ``engines`` — the RS backend capability matrix (scalar / numpy /
  compiled with availability and probe reasons, and what ``--engine
  auto`` resolves to here).
* ``validate`` — quick Monte-Carlo cross-check of the chains at an
  MC-visible rate.
* ``scrub-design`` — the largest scrubbing period meeting a BER budget,
  with its availability/bandwidth overhead.
* ``report`` — regenerate every artifact into one markdown report.
* ``sensitivity`` — BER elasticities of a configuration.
* ``verify fuzz|replay|list-targets`` — deterministic differential
  fuzzing (``repro verify fuzz --target rs-decode --budget 60``),
  replay of shrunk JSON failure artifacts, and the registered-target
  catalogue (see :mod:`repro.verify`).
* ``campaign`` — bulk model-vs-simulation validation with supervised
  workers, chunk-level checkpoint/resume (``--checkpoint``), run
  manifests (``--manifest``), deterministic fault injection
  (``--chaos``, dev), a JSONL span/event/metric trace (``--trace``),
  and live per-chunk heartbeats with ETA (``--progress``).
* ``serve --state-dir DIR`` — the campaign service: an HTTP/JSON API
  to submit campaign specs as jobs, poll/stream their progress, and
  fetch results, backed by a durable job queue (jobs survive restarts)
  and a content-addressed result cache keyed by campaign fingerprint.
* ``doctor PATH [--repair]`` — audit a checkpoint journal or a whole
  state directory (frame CRCs, hash chain, quarantine sidecars, locks,
  manifests) and print a machine-readable JSON report; with
  ``--repair`` truncate torn tails, quarantine corrupt records, and
  rewrite a clean v2 journal (upgrading legacy v1 files).

Exit codes shared with the runtime: 130 on SIGINT (journal resumable),
75 when another campaign holds the journal lock, 74 when journal writes
failed mid-run (campaign completed; resumable state lost).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reed-Solomon coded fault-tolerant memory analysis "
            "(DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("ids", nargs="+", help="fig5..fig10 or 'all'")
    fig.add_argument("--points", type=int, default=13, help="time grid size")
    fig.add_argument("--csv", metavar="DIR", help="also export CSV data")

    ber = sub.add_parser("ber", help="BER(t) of an ad-hoc configuration")
    ber.add_argument(
        "--arrangement", choices=("simplex", "duplex"), default="simplex"
    )
    ber.add_argument("--n", type=int, default=18)
    ber.add_argument("--k", type=int, default=16)
    ber.add_argument("--m", type=int, default=8)
    ber.add_argument(
        "--seu", type=float, default=0.0, help="SEU rate, errors/bit/day"
    )
    ber.add_argument(
        "--permanent",
        type=float,
        default=0.0,
        help="permanent fault rate, /symbol/day",
    )
    ber.add_argument(
        "--tsc", type=float, default=None, help="scrub period, seconds"
    )
    ber.add_argument(
        "--hours", type=float, default=48.0, help="storage horizon, hours"
    )
    ber.add_argument("--points", type=int, default=13)

    sub.add_parser("complexity", help="Section 6 decoder cost table")

    sub.add_parser(
        "engines",
        help="list registered RS backends with availability and reasons",
    )

    val = sub.add_parser("validate", help="Monte-Carlo cross-check")
    val.add_argument("--trials", type=int, default=1000)
    val.add_argument("--seed", type=int, default=2005)
    val.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the batch codec-MC path (results are "
        "seed-deterministic regardless of this value)",
    )
    val.add_argument("--chunk-size", type=int, default=512)

    report = sub.add_parser(
        "report", help="write the full markdown reproduction report"
    )
    report.add_argument("-o", "--output", default="reproduction_report.md")
    report.add_argument("--points", type=int, default=13)

    sens = sub.add_parser(
        "sensitivity", help="BER elasticities of a configuration"
    )
    sens.add_argument(
        "--arrangement", choices=("simplex", "duplex"), default="duplex"
    )
    sens.add_argument("--n", type=int, default=18)
    sens.add_argument("--k", type=int, default=16)
    sens.add_argument("--seu", type=float, default=1.7e-5)
    sens.add_argument("--permanent", type=float, default=0.0)
    sens.add_argument("--tsc", type=float, default=None)
    sens.add_argument("--hours", type=float, default=48.0)

    scen = sub.add_parser(
        "scenario", help="run JSON scenario file(s)"
    )
    scen.add_argument("path", help="JSON file: one scenario or a list")

    camp = sub.add_parser(
        "campaign", help="bulk model-vs-simulation validation campaign"
    )
    camp.add_argument(
        "--trials",
        type=int,
        default=None,
        help="MC trials per cell (default 300, or the preset's budget "
        "under --scenario)",
    )
    camp.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default 2005, or the preset's pinned seed "
        "under --scenario)",
    )
    camp.add_argument(
        "--scenario",
        metavar="NAME",
        help="run a named fault-physics preset instead of the default "
        "validation matrix; see --list-scenarios",
    )
    camp.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario catalog and exit",
    )
    camp.add_argument(
        "--pattern",
        metavar="SPEC",
        help="correlated fault-pattern mixture for every cell of the "
        "default matrix, e.g. '0.9*1BIT+0.08*MBU:3+0.02*ROW' "
        "(exclusive with --scenario)",
    )
    camp.add_argument(
        "--schedule",
        metavar="SPEC",
        help="piecewise-cyclic SEU rate schedule, e.g. "
        "'42.0h@1.0,6.0h@8.0' (exclusive with --scenario)",
    )
    camp.add_argument(
        "--engine",
        choices=("auto", "compiled", "numpy", "scalar", "batch", "reference"),
        default="auto",
        help="RS execution engine: 'auto' (default) picks the fastest "
        "available batch backend (compiled when numba is usable, else "
        "numpy); 'compiled'/'numpy'/'scalar' pin a batch backend "
        "('batch' is a legacy alias for numpy) — all batch backends are "
        "bit-identical, the choice only affects throughput; 'reference' "
        "is the legacy one-trial-at-a-time loop (see 'repro engines' "
        "for the capability matrix)",
    )
    camp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for the batch engine (estimates are "
        "seed-deterministic regardless of this value)",
    )
    camp.add_argument("--chunk-size", type=int, default=512)
    camp.add_argument(
        "--perf",
        action="store_true",
        help="print batch-engine work/throughput counters",
    )
    camp.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="append-only JSONL journal of completed chunks; rerunning "
        "the same command against an existing journal resumes it with "
        "bit-identical results (batch engine only)",
    )
    camp.add_argument(
        "--manifest",
        metavar="PATH",
        help="write a machine-readable JSON run manifest (seed, engine, "
        "retry/fallback counts, git describe, wall clock, results)",
    )
    camp.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline; an overdue worker is presumed hung, "
        "killed, and its chunk retried (default: no timeout)",
    )
    camp.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="attempts per chunk on the batch engine before degrading "
        "that chunk to the scalar engine (default 3)",
    )
    camp.add_argument(
        "--chaos",
        metavar="SPEC",
        help="[dev] deterministic fault injection, e.g. "
        "'crash@0;hang@2:30;poison@1;slow@*:0.1' — proves the "
        "supervisor's retry/fallback machinery end to end; journal "
        "faults 'bitrot@i[:mask]', 'torn@i[:frac]', 'enospc@i[:n]' "
        "corrupt/tear/fail checkpoint appends to prove quarantine, "
        "torn-tail truncation, and ENOSPC degradation",
    )
    camp.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL observability trace: solver spans (terms "
        "used, tail bounds, expm cache hits), chunk heartbeat events "
        "with ETA, and a metrics snapshot (chunk-latency histogram)",
    )
    camp.add_argument(
        "--progress",
        action="store_true",
        help="print per-chunk heartbeats (done/total, rate, ETA) and "
        "streaming BER±CI snapshots to stderr as the campaign runs "
        "(batch engine only)",
    )
    camp.add_argument(
        "--executor",
        choices=("auto", "serial", "pool", "lease", "fleet"),
        default="auto",
        help="chunk dispatch backend (batch engine only): 'serial' runs "
        "in-process, 'pool' uses the process pool, 'lease' posts chunks "
        "to an on-disk board next to the checkpoint journal where "
        "long-lived workers lease them (multi-host-shaped, with "
        "work-stealing and straggler re-dispatch); 'fleet' drives "
        "detachable `repro worker` agents over a shared board with "
        "heartbeat leases and epoch-fenced re-dispatch (cross-host "
        "capable; spawns local agents unless --board points at an "
        "externally staffed board); 'auto' (default) picks serial for "
        "--workers 1, else pool — estimates are bit-identical for "
        "every choice",
    )
    camp.add_argument(
        "--board",
        metavar="DIR",
        help="shared board directory for --executor lease/fleet "
        "(default: derived from the checkpoint journal path); with "
        "--executor fleet an explicit board means external `repro "
        "worker` agents do the computing and none are spawned locally",
    )
    camp.add_argument(
        "--fleet-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat-lease TTL for --executor fleet: a worker whose "
        "heartbeat goes stale past this is declared dead and its chunk "
        "re-dispatched under a bumped epoch (default 15)",
    )
    camp.add_argument(
        "--stop-rel-ci",
        type=float,
        default=None,
        metavar="WIDTH",
        help="adaptive stopping: finish each cell once the relative CI "
        "halfwidth ((hi-lo)/2 divided by the estimate) of the contiguous "
        "chunk prefix reaches WIDTH (e.g. 0.1 = ±10%%); the stopping "
        "point is a deterministic function of the seed, identical for "
        "any --workers or --executor (batch engine only)",
    )
    camp.add_argument(
        "--min-trials",
        type=int,
        default=0,
        metavar="N",
        help="floor for --stop-rel-ci: never stop before the cumulative "
        "prefix holds at least N trials (guards against spuriously "
        "tight intervals on lucky early chunks)",
    )
    camp.add_argument(
        "--ci-method",
        choices=("wilson", "jeffreys"),
        default="wilson",
        help="interval family for streaming snapshots and the "
        "--stop-rel-ci rule; 'jeffreys' is preferred at extreme BER "
        "(final estimates always also report the classic Wilson "
        "interval)",
    )

    verify = sub.add_parser(
        "verify",
        help="deterministic fuzzing & differential-oracle verification",
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)
    vfuzz = verify_sub.add_parser(
        "fuzz", help="fuzz differential targets with a time/trial budget"
    )
    vfuzz.add_argument(
        "--target",
        "-t",
        action="append",
        dest="targets",
        metavar="NAME",
        help="target to fuzz (repeatable); see 'verify list-targets'",
    )
    vfuzz.add_argument(
        "--all-targets",
        action="store_true",
        help="fuzz every registered target (budget split evenly)",
    )
    vfuzz.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="total time budget; same seed always yields the same trial "
        "sequence, the budget only decides how far it runs",
    )
    vfuzz.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="per-target trial budget (may be combined with --budget)",
    )
    vfuzz.add_argument("--seed", type=int, default=2005)
    vfuzz.add_argument(
        "--artifact-dir",
        default="verify_artifacts",
        metavar="DIR",
        help="where shrunk failure artifacts are written (default "
        "./verify_artifacts)",
    )
    vfuzz.add_argument(
        "--induce-bug",
        action="store_true",
        help="[dev] swap in each target's deliberately buggy self-test "
        "check to demonstrate detect->shrink->artifact->replay end to end",
    )
    vreplay = verify_sub.add_parser(
        "replay", help="replay a failure artifact or regression case"
    )
    vreplay.add_argument("artifacts", nargs="+", metavar="ARTIFACT.json")
    vreplay.add_argument(
        "--original",
        action="store_true",
        help="replay the original (pre-shrink) case of a failure artifact",
    )
    verify_sub.add_parser(
        "list-targets", help="list registered differential targets"
    )

    doctor = sub.add_parser(
        "doctor",
        help="audit (and with --repair, heal) campaign state on disk",
    )
    doctor.add_argument(
        "path",
        help="checkpoint journal file or state directory to audit",
    )
    doctor.add_argument(
        "--repair",
        action="store_true",
        help="truncate torn tails, quarantine corrupt records, and "
        "rewrite a clean checksummed v2 journal (upgrades legacy v1 "
        "files); the rewrite is atomic",
    )

    serve = sub.add_parser(
        "serve",
        help="run the campaign service HTTP API (submit/poll/stream/"
        "result jobs backed by a durable queue and result cache)",
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        help="service state directory (job queue journal, chunk "
        "journals, content-addressed result cache)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 picks an ephemeral port (default: 8765)",
    )
    serve.add_argument(
        "--max-jobs",
        type=int,
        default=2,
        help="worker threads / concurrent campaigns (default: 2)",
    )
    serve.add_argument(
        "--tenant-cap",
        type=int,
        default=1,
        help="max concurrent jobs per tenant (default: 1)",
    )

    worker = sub.add_parser(
        "worker",
        help="detachable fleet worker agent: claim chunks from a shared "
        "board, heartbeat a lease, publish results (run one per "
        "host/core against an NFS or tmpfs board)",
    )
    worker.add_argument(
        "--board",
        required=True,
        metavar="DIR",
        help="shared board directory (same path the coordinator passes "
        "to `repro campaign --executor fleet --board`)",
    )
    worker.add_argument(
        "--ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat-lease TTL this worker advertises; must match "
        "the coordinator's --fleet-ttl (default 15)",
    )
    worker.add_argument(
        "--engine",
        choices=("auto", "compiled", "numpy", "scalar", "batch"),
        default="auto",
        help="RS batch backend this worker computes with (bit-identical "
        "across choices; 'auto' picks the fastest available)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="stable identity on the board (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N chunks (test/benchmark aid; "
        "default: run until drained or STOP)",
    )

    design = sub.add_parser(
        "scrub-design", help="slowest scrub meeting a BER budget"
    )
    design.add_argument("--budget", type=float, default=1e-6)
    design.add_argument("--seu", type=float, default=1.7e-5)
    design.add_argument("--hours", type=float, default=48.0)
    design.add_argument("--words", type=int, default=1 << 20)
    design.add_argument("--clock-mhz", type=float, default=50.0)
    return parser


def cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import ALL_FIGURES, render_ber_table
    from .analysis.export import experiment_to_csv
    from .memory import HOURS_PER_MONTH

    ids = list(ALL_FIGURES) if "all" in args.ids else args.ids
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for fig_id in ids:
        result = ALL_FIGURES[fig_id](points=args.points)
        monthly = fig_id in ("fig8", "fig9", "fig10")
        scale = HOURS_PER_MONTH if monthly else 1.0
        label = "months" if monthly else "hours"
        print(f"\n{fig_id}: {result.title}")
        print(render_ber_table(result.curves, time_label=label, time_scale=scale))
        failed = result.failed_expectations()
        print(
            "expectations: "
            + ("all hold" if not failed else f"FAILED - {failed}")
        )
        if args.csv:
            path = experiment_to_csv(
                result, args.csv, time_label=label, time_scale=scale
            )
            print(f"csv: {path}")
        if failed:
            return 1
    return 0


def cmd_ber(args: argparse.Namespace) -> int:
    from .analysis import render_ber_table
    from .memory import ber_curve, duplex_model, simplex_model

    factory = simplex_model if args.arrangement == "simplex" else duplex_model
    model = factory(
        args.n,
        args.k,
        m=args.m,
        seu_per_bit_day=args.seu,
        erasure_per_symbol_day=args.permanent,
        scrub_period_seconds=args.tsc,
    )
    times = np.linspace(0.0, args.hours, args.points)
    curve = ber_curve(model, times, label=args.arrangement)
    print(render_ber_table([curve]))
    print(f"\nBER({args.hours:g} h) = {curve.final:.6e}")
    return 0


def cmd_complexity(_args: argparse.Namespace) -> int:
    from .analysis import render_cost_table, table_decoder_complexity

    print(render_cost_table(table_decoder_complexity()))
    return 0


def cmd_engines(_args: argparse.Namespace) -> int:
    from .rs.backends import auto_backend, list_backends

    infos = list_backends()
    width = max(len(info.name) for info in infos)
    for info in infos:
        status = "available" if info.available else "UNAVAILABLE"
        print(f"{info.name:<{width}}  {status:<11}  {info.description}")
        print(f"{'':<{width}}  {'':<11}  {info.reason}")
    print(f"\n--engine auto resolves to: {auto_backend()}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .memory import duplex_model, simplex_model
    from .rs import RSCode
    from .simulator import (
        gillespie_fail_probability,
        simulate_fail_probability_batched,
    )

    rng = np.random.default_rng(args.seed)
    lam_day = 2e-3
    code = RSCode(18, 16, m=8)
    ok = True
    for name, model in (
        ("simplex", simplex_model(18, 16, seu_per_bit_day=lam_day)),
        ("duplex", duplex_model(18, 16, seu_per_bit_day=lam_day)),
    ):
        p = model.fail_probability([48.0])[0]
        ssa = gillespie_fail_probability(model, 48.0, args.trials, rng)
        mc = simulate_fail_probability_batched(
            name,
            code,
            48.0,
            seu_per_bit=lam_day / 24.0,
            erasure_per_symbol=0.0,
            trials=max(200, args.trials // 4),
            seed=args.seed,
            chunk_size=args.chunk_size,
            workers=args.workers,
        )
        agree = ssa.consistent_with(p)
        ok = ok and agree
        print(
            f"{name:8s} chain={p:.4f}  SSA={ssa.probability:.4f} "
            f"[{ssa.ci_low:.4f},{ssa.ci_high:.4f}] "
            f"{'OK' if agree else 'DISAGREES'}  codec-MC={mc.probability:.4f}"
        )
    print(
        "note: the duplex codec-MC sits below its chain by design - the "
        "paper's either-word fail rule is conservative (see EXPERIMENTS.md)."
    )
    return 0 if ok else 1


def cmd_scrub_design(args: argparse.Namespace) -> int:
    from .analysis import max_scrub_period_for_budget
    from .memory import scrub_overhead

    period = max_scrub_period_for_budget(
        18,
        16,
        seu_per_bit_day=args.seu,
        budget=args.budget,
        horizon_hours=args.hours,
    )
    overhead = scrub_overhead(
        18,
        16,
        num_words=args.words,
        scrub_period_seconds=period,
        clock_hz=args.clock_mhz * 1e6,
        num_decoders=2,
    )
    print(
        f"budget {args.budget:g} over {args.hours:g} h at "
        f"lambda={args.seu:g}/bit/day:"
    )
    print(f"  slowest admissible Tsc : {period:.0f} s ({period / 60:.0f} min)")
    print(f"  scrub pass duration    : {overhead.pass_seconds:.3f} s")
    print(f"  availability           : {overhead.availability:.6f}")
    print(
        f"  scrub bandwidth        : "
        f"{overhead.scrub_bandwidth_bits_per_s / 8e3:.1f} kB/s"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis import write_report

    path = write_report(args.output, points=args.points)
    print(f"wrote {path}")
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis import memory_system_sensitivities

    results = memory_system_sensitivities(
        args.arrangement,
        args.n,
        args.k,
        args.hours,
        seu_per_bit_day=args.seu,
        erasure_per_symbol_day=args.permanent,
        scrub_period_seconds=args.tsc,
    )
    if not results:
        print("no active parameters to differentiate")
        return 1
    print(
        f"{args.arrangement} RS({args.n},{args.k}), "
        f"BER({args.hours:g} h) = {results[0].base_ber:.3e}"
    )
    for s in results:
        print(
            f"  {s.parameter:<24} base={s.base_value:<12g} "
            f"elasticity={s.elasticity:+.3f}"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .analysis import render_ber_table
    from .analysis.scenario import run_scenario_suite

    results = run_scenario_suite(args.path)
    failed_budget = False
    for result in results:
        print(result.summary())
        print(render_ber_table([result.curve]))
        print()
        if result.meets_budget is False:
            failed_budget = True
    return 1 if failed_budget else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    import time as _time

    from .obs import metrics as obs_metrics
    from .obs import trace as obs_trace
    from .obs.progress import ProgressTracker, format_progress
    from .perf import PerfCounters
    from .runtime import (
        LOCK_CONTENTION_EXIT_CODE,
        STATE_LOST_EXIT_CODE,
        CheckpointError,
        CheckpointJournal,
        CheckpointMismatchError,
        JournalLockedError,
        RetryPolicy,
        RuntimeConfig,
        StoppingRule,
        StragglerPolicy,
        build_manifest,
        chaos_from_arg,
        write_manifest,
    )
    from .simulator import (
        campaign_fingerprint,
        campaign_summary,
        default_validation_campaign,
        get_scenario,
        render_catalog,
        run_campaign,
    )
    from .simulator.patterns import parse_pattern, parse_schedule

    if args.list_scenarios:
        print(render_catalog())
        return 0
    if args.scenario is not None and (
        args.pattern is not None or args.schedule is not None
    ):
        print(
            "--scenario presets pin their own pattern/schedule; "
            "--pattern/--schedule apply to the default matrix only",
            file=sys.stderr,
        )
        return 2
    scenario = None
    if args.scenario is not None:
        try:
            scenario = get_scenario(args.scenario)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        if args.pattern is not None:
            parse_pattern(args.pattern)
        parse_schedule(args.schedule)
    except ValueError as exc:
        print(f"bad fault-physics spec: {exc}", file=sys.stderr)
        return 2
    if args.trials is not None and args.trials <= 0:
        print("--trials must be positive", file=sys.stderr)
        return 2

    # Resolve the engine up front: '--engine compiled' in an environment
    # that cannot run it exits loudly here (reason string included),
    # before any journal header is written or model solved.
    from .rs.backends import BackendUnavailableError, resolve_engine

    try:
        family, _backend = resolve_engine(args.engine)
    except BackendUnavailableError as exc:
        print(f"{exc} (see 'repro engines')", file=sys.stderr)
        return 2

    if args.checkpoint and family != "batch":
        print(
            "--checkpoint requires a batch-family engine (the reference "
            "loop has no chunk structure to journal)",
            file=sys.stderr,
        )
        return 2
    if args.progress and family != "batch":
        print(
            "--progress requires a batch-family engine (heartbeats are "
            "emitted per chunk; the reference loop has none)",
            file=sys.stderr,
        )
        return 2
    if args.executor != "auto" and family != "batch":
        print(
            "--executor requires a batch-family engine (the reference "
            "loop has no chunks to dispatch)",
            file=sys.stderr,
        )
        return 2
    if args.stop_rel_ci is not None and family != "batch":
        print(
            "--stop-rel-ci requires a batch-family engine (adaptive "
            "stopping consumes per-chunk results)",
            file=sys.stderr,
        )
        return 2
    if args.stop_rel_ci is not None and args.stop_rel_ci <= 0:
        print("--stop-rel-ci must be > 0", file=sys.stderr)
        return 2
    if args.min_trials < 0:
        print("--min-trials must be >= 0", file=sys.stderr)
        return 2
    if args.min_trials and args.stop_rel_ci is None:
        print(
            "--min-trials is a floor for --stop-rel-ci; pass both",
            file=sys.stderr,
        )
        return 2
    if args.ci_method != "wilson" and args.stop_rel_ci is None:
        print(
            "--ci-method selects the --stop-rel-ci interval family; "
            "pass both",
            file=sys.stderr,
        )
        return 2
    if args.max_retries < 1:
        print("--max-retries must be >= 1", file=sys.stderr)
        return 2
    if args.board is not None and args.executor not in ("lease", "fleet"):
        print(
            "--board requires --executor lease or fleet (other "
            "executors have no on-disk board)",
            file=sys.stderr,
        )
        return 2
    if args.fleet_ttl is not None and args.executor != "fleet":
        print(
            "--fleet-ttl requires --executor fleet (heartbeat leases "
            "exist only on the fleet board)",
            file=sys.stderr,
        )
        return 2
    if args.fleet_ttl is not None and args.fleet_ttl <= 0:
        print("--fleet-ttl must be positive", file=sys.stderr)
        return 2
    try:
        chaos = chaos_from_arg(args.chaos)
    except ValueError as exc:
        print(f"bad --chaos spec: {exc}", file=sys.stderr)
        return 2

    if scenario is not None:
        cells = list(scenario.cells)
        n, k, m = scenario.n, scenario.k, scenario.m
        t_end_hours = scenario.t_end_hours
        trials = args.trials if args.trials is not None else scenario.trials
        seed = args.seed if args.seed is not None else scenario.seed
    else:
        cells = default_validation_campaign()
        if args.pattern is not None or args.schedule is not None:
            from dataclasses import replace as _replace

            cells = [
                _replace(
                    cell, pattern=args.pattern, schedule=args.schedule
                )
                for cell in cells
            ]
        n, k, m, t_end_hours = 18, 16, 8, 48.0
        trials = args.trials if args.trials is not None else 300
        seed = args.seed if args.seed is not None else 2005
    counters = PerfCounters()
    try:
        journal = (
            CheckpointJournal(args.checkpoint, chaos=chaos)
            if args.checkpoint
            else None
        )
    except JournalLockedError as exc:
        print(f"checkpoint locked: {exc}", file=sys.stderr)
        return LOCK_CONTENTION_EXIT_CODE
    except CheckpointError as exc:
        print(f"checkpoint unusable: {exc}", file=sys.stderr)
        return 2
    resumed = journal is not None and journal.n_chunks > 0
    if resumed:
        print(
            f"resuming from {args.checkpoint}: "
            f"{journal.n_chunks} chunk(s) already journaled"
        )
    if journal is not None and journal.records_quarantined:
        print(
            f"journal damage: {journal.records_quarantined} corrupt "
            f"record(s) quarantined to {args.checkpoint}.quarantine; "
            "the affected chunks will be recomputed",
            file=sys.stderr,
        )
    if journal is not None and journal.readonly:
        print(
            f"note: {args.checkpoint} is a legacy v1 journal — resuming "
            "read-only (new chunks are not persisted; run "
            f"'repro doctor {args.checkpoint} --repair' to upgrade)",
            file=sys.stderr,
        )

    collector = obs_trace.TraceCollector() if args.trace else None
    if collector is not None:
        obs_trace.install_collector(collector)
    heartbeats: list = []

    def on_progress(event) -> None:
        heartbeats.append(event.as_dict())
        if args.progress:
            print(f"  {format_progress(event)}", file=sys.stderr)

    def on_snapshot(snap) -> None:
        rel = (
            ""
            if snap.rel_halfwidth == float("inf")
            else f" (±{100.0 * snap.rel_halfwidth:.1f}%)"
        )
        print(
            f"  ber={snap.probability:.3e} "
            f"ci=[{snap.ci_low:.3e}, {snap.ci_high:.3e}]{rel} "
            f"n={snap.trials}",
            file=sys.stderr,
        )

    from pathlib import Path

    stop = None
    if args.stop_rel_ci is not None:
        stop = StoppingRule(
            rel_ci=args.stop_rel_ci,
            min_trials=args.min_trials,
            method=args.ci_method,
        )
    tracker = None
    if family == "batch" and (args.progress or args.trace or args.manifest):
        tracker = ProgressTracker(
            total=trials * len(cells), unit="trials"
        )
    runtime = RuntimeConfig(
        retry=RetryPolicy(max_attempts=args.max_retries),
        chunk_timeout=args.chunk_timeout,
        chaos=chaos,
        journal=journal,
        executor=None if args.executor == "auto" else args.executor,
        board_dir=Path(args.board) if args.board else None,
        worker_ttl=args.fleet_ttl,
        # The board-backed executors are the multi-host-shaped backends,
        # so they get straggler speculation by default; serial/pool
        # chunks share one machine and a slow chunk there is just a
        # slow machine.
        straggler=(
            StragglerPolicy() if args.executor in ("lease", "fleet") else None
        ),
        stop=stop,
        on_snapshot=on_snapshot if args.progress else None,
        progress=tracker,
        on_progress=on_progress if tracker is not None else None,
    )
    t0 = _time.perf_counter()
    try:
        rows = run_campaign(
            cells,
            n=n,
            k=k,
            m=m,
            t_end_hours=t_end_hours,
            trials=trials,
            base_seed=seed,
            engine=args.engine,
            workers=args.workers,
            chunk_size=args.chunk_size,
            counters=counters,
            runtime=runtime if family == "batch" else None,
        )
    except CheckpointMismatchError as exc:
        print(f"checkpoint refused: {exc}", file=sys.stderr)
        return 2
    except JournalLockedError as exc:
        print(f"checkpoint locked: {exc}", file=sys.stderr)
        return LOCK_CONTENTION_EXIT_CODE
    except KeyboardInterrupt:
        if journal is not None:
            print(
                f"\ninterrupted; {journal.n_chunks} completed chunk(s) "
                f"checkpointed in {args.checkpoint} — rerun the same "
                "command to resume",
                file=sys.stderr,
            )
        else:
            print(
                "\ninterrupted (no --checkpoint given; progress lost)",
                file=sys.stderr,
            )
        return 130
    finally:
        if journal is not None:
            journal.close()
            counters.io_errors += journal.io_errors
            counters.records_quarantined += journal.records_quarantined
        # Mirror the counters into the metrics registry so both the
        # trace export and the manifest carry one coherent snapshot.
        counters.publish(obs_metrics.get_registry())
        if collector is not None:
            obs_trace.install_collector(None)
            trace_path = collector.export_jsonl(
                args.trace, metrics=obs_metrics.get_registry().snapshot()
            )
            print(f"trace: {trace_path}", file=sys.stderr)
    wall = _time.perf_counter() - t0

    for row in rows:
        mark = "OK " if row.consistent else "!! "
        est = row.estimate
        early = (
            f" (stopped early: {est.trials}/{trials} trials)"
            if est.stopped_early
            else ""
        )
        # Out-of-model cells (correlated patterns) have no analytic
        # prediction: degrade the column gracefully instead of failing.
        model_text = (
            "   -- "
            if row.model_fail_probability is None
            else f"{row.model_fail_probability:.4f}"
        )
        print(
            f"{mark}{row.cell.label():<40} model={model_text} "
            f"mc={est.probability:.4f} [{est.ci_low:.4f},{est.ci_high:.4f}] "
            f"miscorrect={est.silent_miscorrections} "
            f"unreadable={est.detected_uncorrectable}{early}"
        )
    summary = campaign_summary(rows)
    print()
    all_ok = True
    for arrangement, (ok, total) in summary.items():
        print(f"{arrangement}: {ok}/{total} cells consistent")
        all_ok = all_ok and ok == total
    if counters.had_faults:
        print("\nresilience:")
        print(counters.resilience_summary())
    if args.perf and family == "batch":
        print(
            f"\nbatch engine [{_backend} backend] "
            f"({args.workers} worker(s)):"
        )
        print(counters.summary())
    if args.manifest:
        manifest = build_manifest(
            command="campaign",
            scenario=args.scenario,
            fingerprint=campaign_fingerprint(
                cells,
                n,
                k,
                m,
                t_end_hours,
                trials,
                seed,
                args.engine,
                args.chunk_size,
                stop=stop,
            ),
            rows=rows,
            counters=counters,
            events=runtime.events,
            wall_clock_seconds=wall,
            resumed=resumed,
            checkpoint_path=args.checkpoint,
            progress_events=heartbeats,
            metrics=obs_metrics.get_registry().snapshot(),
        )
        path = write_manifest(args.manifest, manifest)
        print(f"manifest: {path}")
    if journal is not None and journal.degraded:
        print(
            f"\njournal degraded ({journal.degraded_reason}): "
            f"{journal.appends_lost} chunk record(s) were not persisted; "
            "the campaign completed but cannot be resumed from "
            f"{args.checkpoint}",
            file=sys.stderr,
        )
        return STATE_LOST_EXIT_CODE
    return 0 if all_ok else 1


def cmd_doctor(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .runtime import audit_path, repair_journal

    target = Path(args.path)
    if not target.exists():
        print(f"doctor: {target}: no such file or directory", file=sys.stderr)
        return 2
    report = audit_path(target)
    if args.repair:
        from .runtime import repair_board

        repairs = []
        for journal in report["journals"]:
            needs = (
                journal["classification"] in ("corrupt", "torn-tail")
                or journal["version"] == 1
            )
            if needs:
                repairs.append(repair_journal(journal["path"]))
        for board in report.get("boards", []):
            if not board["healthy"]:
                repairs.append(repair_board(board["path"]))
        # Re-audit so the report reflects the healed state, and keep the
        # action log alongside it.
        report = audit_path(target)
        report["repairs"] = repairs
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["healthy"] else 1


def cmd_worker(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .rs.backends import BackendUnavailableError, resolve_engine
    from .runtime.fleet import DEFAULT_WORKER_TTL, worker_main

    board = Path(args.board)
    if not board.is_dir():
        print(f"worker: {board}: no such board directory", file=sys.stderr)
        return 2
    if args.ttl is not None and args.ttl <= 0:
        print("--ttl must be positive", file=sys.stderr)
        return 2
    if args.max_chunks is not None and args.max_chunks < 0:
        print("--max-chunks must be >= 0", file=sys.stderr)
        return 2
    backend = None
    if args.engine != "auto":
        try:
            family, backend = resolve_engine(args.engine)
        except BackendUnavailableError as exc:
            print(f"{exc} (see 'repro engines')", file=sys.stderr)
            return 2
        if family != "batch":
            print(
                "worker: --engine must name a batch-family backend "
                "(chunks are batch payloads)",
                file=sys.stderr,
            )
            return 2
    done = worker_main(
        board,
        worker_id=args.worker_id,
        ttl=DEFAULT_WORKER_TTL if args.ttl is None else args.ttl,
        backend=backend,
        max_chunks=args.max_chunks,
    )
    print(f"worker: drained after {done} chunk(s)", file=sys.stderr)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import (
        all_targets,
        fuzz_target,
        get_target,
        replay_artifact,
    )

    if args.verify_command == "list-targets":
        targets = all_targets()
        width = max(len(t.name) for t in targets)
        for t in targets:
            layers = ",".join(t.layers)
            print(f"{t.name:<{width}}  [{layers}]  {t.description}")
        return 0

    if args.verify_command == "replay":
        all_ok = True
        for path in args.artifacts:
            try:
                result = replay_artifact(path, use_shrunk=not args.original)
            except (OSError, ValueError, KeyError) as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                all_ok = False
                continue
            print(result.summary())
            if result.mismatch is not None:
                print(f"  detail: {result.mismatch.detail}")
            all_ok = all_ok and result.as_recorded
        return 0 if all_ok else 1

    # fuzz
    if args.budget is None and args.trials is None:
        print(
            "verify fuzz: need --budget SECONDS and/or --trials N",
            file=sys.stderr,
        )
        return 2
    if args.all_targets:
        if args.targets:
            print(
                "verify fuzz: --target and --all-targets are exclusive",
                file=sys.stderr,
            )
            return 2
        targets = all_targets()
    else:
        if not args.targets:
            print(
                "verify fuzz: pick --target NAME (repeatable) or "
                "--all-targets",
                file=sys.stderr,
            )
            return 2
        try:
            targets = [get_target(name) for name in args.targets]
        except KeyError as exc:
            print(f"verify fuzz: {exc.args[0]}", file=sys.stderr)
            return 2
    per_budget = (
        None if args.budget is None else args.budget / len(targets)
    )
    failed = False
    for target in targets:
        report = fuzz_target(
            target,
            seed=args.seed,
            budget_seconds=per_budget,
            max_trials=args.trials,
            artifact_dir=args.artifact_dir,
            induce_bug=args.induce_bug,
        )
        print(report.summary())
        if report.failed:
            failed = True
            print(f"  mismatch: {report.mismatch.detail}")
            print(f"  artifact: {report.artifact_path}")
            print(
                f"  replay:   python -m repro verify replay "
                f"{report.artifact_path}"
            )
    return 1 if failed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .runtime.integrity import (
        LOCK_CONTENTION_EXIT_CODE,
        JournalLockedError,
    )
    from .service import CampaignScheduler, ServiceServer
    from .service.queue import QueueError

    if not (0 <= args.port <= 65535):
        print(f"--port must be in [0, 65535], got {args.port}", file=sys.stderr)
        return 2
    if args.max_jobs < 1:
        print(f"--max-jobs must be >= 1, got {args.max_jobs}", file=sys.stderr)
        return 2
    if args.tenant_cap < 1:
        print(
            f"--tenant-cap must be >= 1, got {args.tenant_cap}",
            file=sys.stderr,
        )
        return 2

    try:
        scheduler = CampaignScheduler(
            args.state_dir,
            max_jobs=args.max_jobs,
            tenant_cap=args.tenant_cap,
        )
    except JournalLockedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return LOCK_CONTENTION_EXIT_CODE
    except QueueError as exc:
        print(
            f"error: {exc}\nhint: repro doctor {args.state_dir}",
            file=sys.stderr,
        )
        return 2
    scheduler.start()

    async def run() -> int:
        server = ServiceServer(scheduler, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro service on http://{args.host}:{server.port} "
            f"(state: {args.state_dir}, workers: {args.max_jobs})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stopping.set)
        await stopping.wait()
        await server.close()
        return 130

    try:
        code = asyncio.run(run())
    finally:
        scheduler.stop()
    # Queued/running jobs revert to queued on the next start; 130
    # mirrors the campaign SIGINT contract (state resumable).
    return code


_COMMANDS = {
    "figure": cmd_figure,
    "report": cmd_report,
    "campaign": cmd_campaign,
    "scenario": cmd_scenario,
    "sensitivity": cmd_sensitivity,
    "ber": cmd_ber,
    "complexity": cmd_complexity,
    "engines": cmd_engines,
    "validate": cmd_validate,
    "verify": cmd_verify,
    "doctor": cmd_doctor,
    "worker": cmd_worker,
    "scrub-design": cmd_scrub_design,
    "serve": cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
