"""Lightweight performance instrumentation for the batch execution layer.

The batch codec and the chunked Monte-Carlo engine are performance
features, so they carry their own meters: :class:`PerfCounters` counts
the work actually done (words encoded/decoded, how many words took the
vectorized clean fast path vs. the scalar errors-and-erasures fallback,
trials completed) and :class:`Stopwatch` accumulates wall-clock time so
throughput (trials/sec, words/sec) can be reported by benchmarks and the
CLI without any external profiler.

Counters are plain additive state: merging the per-chunk counters
returned by worker processes reproduces exactly the counters a
single-process run would have produced, which keeps the ``workers=N``
path observable without breaking its determinism contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Optional


@dataclass
class PerfCounters:
    """Additive work counters for the batch codec and MC engine.

    Attributes
    ----------
    words_encoded: codewords produced by ``encode_batch``.
    words_decoded: words submitted to ``decode_batch``.
    clean_fast_path: decoded words that took the all-zero-syndrome
        vectorized early-out.
    scalar_fallbacks: decoded words routed to the scalar
        errors-and-erasures pipeline (dirty words).
    decode_failures: words the scalar fallback reported uncorrectable.
    trials: Monte-Carlo trials completed.
    chunks: Monte-Carlo chunks processed.
    elapsed_seconds: wall-clock time accumulated by :class:`Stopwatch`.

    Resilience counters (filled by :mod:`repro.runtime`):

    retries: chunk attempts re-dispatched after a failure.
    chunk_failures: individual chunk attempt failures observed.
    chunk_timeouts: chunks that exceeded the per-chunk deadline.
    worker_crashes: worker-process deaths detected via a broken pool.
    pool_restarts: times the worker pool was torn down and rebuilt.
    engine_fallbacks: chunks degraded from the batch to scalar engine.
    serial_fallbacks: times pooled execution degraded to serial.
    chunks_resumed: chunks replayed from a checkpoint journal.
    """

    words_encoded: int = 0
    words_decoded: int = 0
    clean_fast_path: int = 0
    scalar_fallbacks: int = 0
    decode_failures: int = 0
    trials: int = 0
    chunks: int = 0
    elapsed_seconds: float = 0.0
    retries: int = 0
    chunk_failures: int = 0
    chunk_timeouts: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    engine_fallbacks: int = 0
    serial_fallbacks: int = 0
    chunks_resumed: int = 0

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Add another counter set into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (picklable, for worker processes)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "PerfCounters":
        # Tolerate dicts from older journal/checkpoint records that
        # predate newer counter fields (they default to zero).
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    # -- derived metrics ---------------------------------------------------

    @property
    def fallback_rate(self) -> float:
        """Fraction of decoded words that needed the scalar pipeline."""
        if self.words_decoded <= 0:
            return 0.0
        return self.scalar_fallbacks / self.words_decoded

    @property
    def trials_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.trials / self.elapsed_seconds

    @property
    def words_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.words_decoded / self.elapsed_seconds

    def summary(self) -> str:
        """Human-readable one-block summary for benchmarks and the CLI."""
        lines = [
            f"trials             : {self.trials}",
            f"chunks             : {self.chunks}",
            f"words encoded      : {self.words_encoded}",
            f"words decoded      : {self.words_decoded}",
            f"clean fast path    : {self.clean_fast_path}",
            f"scalar fallbacks   : {self.scalar_fallbacks} "
            f"({100.0 * self.fallback_rate:.1f}%)",
            f"decode failures    : {self.decode_failures}",
            f"elapsed            : {self.elapsed_seconds:.3f} s",
        ]
        if self.trials and self.elapsed_seconds > 0:
            lines.append(f"trials/sec         : {self.trials_per_second:,.0f}")
        if self.words_decoded and self.elapsed_seconds > 0:
            lines.append(f"decoded words/sec  : {self.words_per_second:,.0f}")
        resilience = self.resilience_summary()
        if resilience:
            lines.append(resilience)
        return "\n".join(lines)

    # -- resilience reporting ---------------------------------------------

    @property
    def had_faults(self) -> bool:
        """True if the run saw any retries, faults, fallbacks, or resume."""
        return bool(
            self.retries
            or self.chunk_failures
            or self.chunk_timeouts
            or self.worker_crashes
            or self.pool_restarts
            or self.engine_fallbacks
            or self.serial_fallbacks
            or self.chunks_resumed
        )

    def resilience_summary(self) -> str:
        """Non-empty only when something went wrong (or was resumed)."""
        if not self.had_faults:
            return ""
        lines = []
        pairs = [
            ("retries", self.retries),
            ("chunk failures", self.chunk_failures),
            ("chunk timeouts", self.chunk_timeouts),
            ("worker crashes", self.worker_crashes),
            ("pool restarts", self.pool_restarts),
            ("engine fallbacks", self.engine_fallbacks),
            ("serial fallbacks", self.serial_fallbacks),
            ("chunks resumed", self.chunks_resumed),
        ]
        for name, value in pairs:
            if value:
                lines.append(f"{name:<19}: {value}")
        return "\n".join(lines)


class Stopwatch:
    """Context manager accumulating wall time into a counter set.

    >>> counters = PerfCounters()
    >>> with Stopwatch(counters):
    ...     pass
    >>> counters.elapsed_seconds >= 0.0
    True
    """

    def __init__(self, counters: Optional[PerfCounters] = None):
        self.counters = counters
        self.elapsed = 0.0
        self._t0: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.elapsed = time.perf_counter() - self._t0
        if self.counters is not None:
            self.counters.elapsed_seconds += self.elapsed


def timed(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def merge_counter_dicts(dicts: Iterator[Dict[str, float]]) -> PerfCounters:
    """Fold picklable chunk-counter dicts into one :class:`PerfCounters`."""
    total = PerfCounters()
    for d in dicts:
        total.merge(PerfCounters.from_dict(d))
    return total
