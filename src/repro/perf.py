"""Lightweight performance instrumentation for the batch execution layer.

The batch codec and the chunked Monte-Carlo engine are performance
features, so they carry their own meters: :class:`PerfCounters` counts
the work actually done (words encoded/decoded, how many words took the
vectorized clean fast path vs. the scalar errors-and-erasures fallback,
trials completed) and :class:`Stopwatch` accumulates time so throughput
(trials/sec, words/sec) can be reported by benchmarks and the CLI
without any external profiler.

Time is accounted on two separate axes, because they mean different
things under multiprocessing:

* ``cpu_seconds`` — busy time measured *inside* each chunk executor,
  wherever it ran.  Additive: merging per-worker counters sums it, and
  with ``workers=N`` it can legitimately exceed wall clock N-fold.
* ``elapsed_seconds`` — true wall-clock time, measured once by the
  coordinator's :class:`Stopwatch`.  **Not** additive: :meth:`PerfCounters.merge`
  deliberately leaves it alone, because summing per-worker elapsed time
  reports N× the true wall time and understates ``trials_per_second``
  by the worker count (the original single-field accounting bug).

All other counters are plain additive state: merging the per-chunk
counters returned by worker processes reproduces exactly the counters a
single-process run would have produced, which keeps the ``workers=N``
path observable without breaking its determinism contract.

:class:`PerfCounters` is intentionally a plain picklable dataclass — the
carrier worker processes return — while :mod:`repro.obs.metrics` is the
richer registry (gauges, histograms).  :meth:`PerfCounters.publish`
bridges the two by mirroring every field into a registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .obs.metrics import MetricsRegistry


@dataclass
class PerfCounters:
    """Additive work counters for the batch codec and MC engine.

    Attributes
    ----------
    words_encoded: codewords produced by ``encode_batch``.
    words_decoded: words submitted to ``decode_batch``.
    clean_fast_path: decoded words that took the all-zero-syndrome
        vectorized early-out.
    scalar_fallbacks: decoded words routed to the scalar
        errors-and-erasures pipeline (dirty words).
    decode_failures: words the scalar fallback reported uncorrectable.
    trials: Monte-Carlo trials completed.
    chunks: Monte-Carlo chunks processed.
    elapsed_seconds: true wall-clock time, measured by the
        *coordinator's* :class:`Stopwatch`.  Excluded from :meth:`merge`
        (wall time is not additive across workers).
    cpu_seconds: busy time accumulated *inside* chunk executors;
        additive across workers and can exceed ``elapsed_seconds``
        under multiprocessing.
    kernel_seconds: busy time spent inside the RS backend's encode /
        syndrome kernels specifically (a subset of ``cpu_seconds``).
        Additive; per-engine kernel time is this counter paired with
        the run's engine label (a campaign uses one engine throughout).

    Resilience counters (filled by :mod:`repro.runtime`):

    retries: chunk attempts re-dispatched after a failure.
    chunk_failures: individual chunk attempt failures observed.
    chunk_timeouts: chunks that exceeded the per-chunk deadline.
    worker_crashes: worker-process deaths detected via a broken pool.
    pool_restarts: times the worker pool was torn down and rebuilt.
    engine_fallbacks: chunks degraded from the batch to scalar engine.
    serial_fallbacks: times pooled execution degraded to serial.
    chunks_resumed: chunks replayed from a checkpoint journal.
    io_errors: journal appends lost to write failures (ENOSPC, I/O
        errors) — the campaign degraded to memory-only state.
    records_quarantined: corrupt journal records moved to the
        ``.quarantine`` sidecar on load (their chunks were recomputed).
    stragglers_redispatched: speculative second copies issued for
        chunks whose in-flight age exceeded the straggler threshold.
    duplicate_results: late completions discarded because another copy
        of the chunk finished first (first-result-wins dedup).
    """

    words_encoded: int = 0
    words_decoded: int = 0
    clean_fast_path: int = 0
    scalar_fallbacks: int = 0
    decode_failures: int = 0
    trials: int = 0
    chunks: int = 0
    elapsed_seconds: float = 0.0
    cpu_seconds: float = 0.0
    kernel_seconds: float = 0.0
    retries: int = 0
    chunk_failures: int = 0
    chunk_timeouts: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    engine_fallbacks: int = 0
    serial_fallbacks: int = 0
    chunks_resumed: int = 0
    io_errors: int = 0
    records_quarantined: int = 0
    stragglers_redispatched: int = 0
    duplicate_results: int = 0

    #: Fields :meth:`merge` must NOT sum: wall clock is measured once by
    #: the coordinator, not accumulated across workers.
    NON_ADDITIVE = frozenset({"elapsed_seconds"})

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Add another counter set into this one (returns self).

        Every field is summed except ``elapsed_seconds``: per-chunk /
        per-worker wall times overlap under multiprocessing, so summing
        them would report N× the true duration.  The coordinator owns
        ``elapsed_seconds`` via its own :class:`Stopwatch`.
        """
        for f in fields(self):
            if f.name in self.NON_ADDITIVE:
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (picklable, for worker processes)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "PerfCounters":
        # Tolerate dicts from older journal/checkpoint records that
        # predate newer counter fields (they default to zero).
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})

    def publish(
        self, registry: "MetricsRegistry", prefix: str = "repro.perf."
    ) -> None:
        """Mirror every field into an :mod:`repro.obs.metrics` registry.

        Monotonic work counts become gauges too (a snapshot, not a
        stream): the registry reflects this counter set's current state.
        """
        for f in fields(self):
            registry.gauge(prefix + f.name).set(getattr(self, f.name))

    # -- derived metrics ---------------------------------------------------

    @property
    def fallback_rate(self) -> float:
        """Fraction of decoded words that needed the scalar pipeline."""
        if self.words_decoded <= 0:
            return 0.0
        return self.scalar_fallbacks / self.words_decoded

    @property
    def trials_per_second(self) -> float:
        """Trials per true wall-clock second (coordinator-measured)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.trials / self.elapsed_seconds

    @property
    def words_per_second(self) -> float:
        """Decoded words per true wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.words_decoded / self.elapsed_seconds

    @property
    def parallel_speedup(self) -> float:
        """``cpu_seconds / elapsed_seconds`` — effective busy workers."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.cpu_seconds / self.elapsed_seconds

    def summary(self) -> str:
        """Human-readable one-block summary for benchmarks and the CLI."""
        lines = [
            f"trials             : {self.trials}",
            f"chunks             : {self.chunks}",
            f"words encoded      : {self.words_encoded}",
            f"words decoded      : {self.words_decoded}",
            f"clean fast path    : {self.clean_fast_path}",
            f"scalar fallbacks   : {self.scalar_fallbacks} "
            f"({100.0 * self.fallback_rate:.1f}%)",
            f"decode failures    : {self.decode_failures}",
            f"elapsed (wall)     : {self.elapsed_seconds:.3f} s",
            f"cpu (all workers)  : {self.cpu_seconds:.3f} s",
        ]
        if self.kernel_seconds > 0:
            lines.append(
                f"kernel (GF/RS)     : {self.kernel_seconds:.3f} s"
            )
        if self.elapsed_seconds > 0 and self.cpu_seconds > 0:
            lines.append(f"parallel speedup   : {self.parallel_speedup:.2f}x")
        if self.trials and self.elapsed_seconds > 0:
            lines.append(f"trials/sec (wall)  : {self.trials_per_second:,.0f}")
        if self.words_decoded and self.elapsed_seconds > 0:
            lines.append(f"decoded words/sec  : {self.words_per_second:,.0f}")
        resilience = self.resilience_summary()
        if resilience:
            lines.append(resilience)
        return "\n".join(lines)

    # -- resilience reporting ---------------------------------------------

    @property
    def had_faults(self) -> bool:
        """True if the run saw any retries, faults, fallbacks, or resume."""
        return bool(
            self.retries
            or self.chunk_failures
            or self.chunk_timeouts
            or self.worker_crashes
            or self.pool_restarts
            or self.engine_fallbacks
            or self.serial_fallbacks
            or self.chunks_resumed
            or self.io_errors
            or self.records_quarantined
            or self.stragglers_redispatched
            or self.duplicate_results
        )

    def resilience_summary(self) -> str:
        """Non-empty only when something went wrong (or was resumed)."""
        if not self.had_faults:
            return ""
        lines = []
        pairs = [
            ("retries", self.retries),
            ("chunk failures", self.chunk_failures),
            ("chunk timeouts", self.chunk_timeouts),
            ("worker crashes", self.worker_crashes),
            ("pool restarts", self.pool_restarts),
            ("engine fallbacks", self.engine_fallbacks),
            ("serial fallbacks", self.serial_fallbacks),
            ("chunks resumed", self.chunks_resumed),
            ("journal io errors", self.io_errors),
            ("quarantined records", self.records_quarantined),
            ("stragglers re-dispatched", self.stragglers_redispatched),
            ("duplicate results dropped", self.duplicate_results),
        ]
        for name, value in pairs:
            if value:
                lines.append(f"{name:<19}: {value}")
        return "\n".join(lines)


class Stopwatch:
    """Context manager accumulating elapsed time into a counter field.

    ``attr`` selects the destination: the coordinator times true wall
    clock into ``elapsed_seconds`` (the default), while chunk executors
    time their own busy interval into the additive ``cpu_seconds``.

    >>> counters = PerfCounters()
    >>> with Stopwatch(counters):
    ...     pass
    >>> counters.elapsed_seconds >= 0.0
    True
    """

    def __init__(
        self,
        counters: Optional[PerfCounters] = None,
        attr: str = "elapsed_seconds",
    ):
        if attr not in {f.name for f in fields(PerfCounters)}:
            raise ValueError(f"unknown PerfCounters field {attr!r}")
        self.counters = counters
        self.attr = attr
        self.elapsed = 0.0
        self._t0: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._t0 is None:
            # A bare assert here would vanish under ``python -O`` and
            # resurface as a baffling TypeError on ``perf_counter() - None``.
            raise RuntimeError(
                "Stopwatch.__exit__ called without __enter__ — use it as "
                "a context manager ('with Stopwatch(...)') or call "
                "__enter__ first"
            )
        self.elapsed = time.perf_counter() - self._t0
        self._t0 = None
        if self.counters is not None:
            setattr(
                self.counters,
                self.attr,
                getattr(self.counters, self.attr) + self.elapsed,
            )


def timed(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0


def merge_counter_dicts(dicts: Iterator[Dict[str, float]]) -> PerfCounters:
    """Fold picklable chunk-counter dicts into one :class:`PerfCounters`."""
    total = PerfCounters()
    for d in dicts:
        total.merge(PerfCounters.from_dict(d))
    return total
