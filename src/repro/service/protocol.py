"""Wire protocol of the campaign service: specs, jobs, result payloads.

A *campaign spec* is the JSON document a client submits: which cells to
run (explicitly, or via a named scenario preset), the code geometry and
horizon, the trial budget and seed, the engine/executor, and an optional
adaptive-stopping rule.  :func:`parse_spec` validates it into a
:class:`CampaignSpec` whose identity is the canonical campaign
fingerprint of :func:`repro.simulator.campaign.campaign_fingerprint` —
*the same* canonicalization that binds checkpoint journals, so the
service's cache key, the journal header, and the manifest all agree on
what "the same campaign" means.

Execution hints (``workers``, ``executor``, ``tenant``) are deliberately
outside the fingerprint: by the runtime's determinism contract they
cannot change the estimate, so they must not fragment the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..rs.backends import ENGINE_CHOICES
from ..runtime.executors import EXECUTOR_NAMES
from ..simulator.campaign import (
    CampaignCell,
    campaign_fingerprint,
    fingerprint_digest,
)
from ..simulator.patterns import parse_pattern, parse_schedule
from ..simulator.scenarios import get_scenario
from ..stats import INTERVAL_METHODS, StoppingRule

#: Job lifecycle.  ``queued -> running -> done | failed``; a server
#: restart reverts ``running`` to ``queued`` (the run died with the
#: process; its chunk journal makes the re-run a resume).
JOB_STATES = ("queued", "running", "done", "failed")

#: Upper bounds a public endpoint must enforce before touching the
#: runtime: a spec is untrusted input, not an operator's CLI flags.
MAX_CELLS = 256
MAX_TRIALS = 50_000_000
MAX_TENANT_LENGTH = 64

DEFAULT_TENANT = "default"


class SpecError(ValueError):
    """Malformed or out-of-bounds campaign spec (HTTP 400, CLI exit 2)."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated, runnable campaign request.

    ``cells`` through ``stop`` are the fingerprinted identity;
    ``workers``/``executor`` are execution hints and ``scenario`` is
    provenance only (a preset submitted by name and the same cells
    submitted explicitly are the same campaign).  ``engine`` enters the
    fingerprint only as its result-relevant family
    (:func:`repro.rs.backends.canonical_engine`): every batch backend
    is bit-identical, so jobs differing only in backend share one cache
    entry.
    """

    cells: Tuple[CampaignCell, ...]
    n: int = 18
    k: int = 16
    m: int = 8
    t_end_hours: float = 48.0
    trials: int = 300
    seed: int = 2005
    engine: str = "batch"
    chunk_size: int = 512
    stop: Optional[StoppingRule] = None
    workers: int = 1
    executor: Optional[str] = None
    scenario: Optional[str] = None

    def fingerprint(self) -> Dict[str, Any]:
        return campaign_fingerprint(
            self.cells,
            self.n,
            self.k,
            self.m,
            self.t_end_hours,
            self.trials,
            self.seed,
            self.engine,
            self.chunk_size,
            stop=self.stop,
        )

    def digest(self) -> str:
        return fingerprint_digest(self.fingerprint())

    def as_dict(self) -> Dict[str, Any]:
        """JSON round-trip form persisted in the job queue journal."""
        return {
            "cells": [
                {
                    "arrangement": cell.arrangement,
                    "seu_per_bit_day": cell.seu_per_bit_day,
                    "erasure_per_symbol_day": cell.erasure_per_symbol_day,
                    "scrub_period_seconds": cell.scrub_period_seconds,
                    "pattern": cell.pattern,
                    "schedule": cell.schedule,
                }
                for cell in self.cells
            ],
            "n": self.n,
            "k": self.k,
            "m": self.m,
            "t_end_hours": self.t_end_hours,
            "trials": self.trials,
            "seed": self.seed,
            "engine": self.engine,
            "chunk_size": self.chunk_size,
            "stopping": None
            if self.stop is None
            else {
                "rel_ci": self.stop.rel_ci,
                "min_trials": self.stop.min_trials,
                "method": self.stop.method,
                "confidence": self.stop.confidence,
            },
            "workers": self.workers,
            "executor": self.executor,
            "scenario": self.scenario,
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _as_int(payload: Dict[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{key!r} must be an integer, got {value!r}",
    )
    return value


def _as_number(payload: Dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{key!r} must be a number, got {value!r}",
    )
    return float(value)


def _parse_cell(raw: Any, index: int) -> CampaignCell:
    _require(
        isinstance(raw, dict), f"cells[{index}] must be an object, got {raw!r}"
    )
    unknown = set(raw) - {
        "arrangement",
        "seu_per_bit_day",
        "erasure_per_symbol_day",
        "scrub_period_seconds",
        "pattern",
        "schedule",
    }
    _require(not unknown, f"cells[{index}]: unknown field(s) {sorted(unknown)}")
    arrangement = raw.get("arrangement")
    _require(
        arrangement in ("simplex", "duplex"),
        f"cells[{index}].arrangement must be 'simplex' or 'duplex', "
        f"got {arrangement!r}",
    )
    seu = _as_number(raw, "seu_per_bit_day", 0.0)
    perm = _as_number(raw, "erasure_per_symbol_day", 0.0)
    _require(seu >= 0.0, f"cells[{index}].seu_per_bit_day must be >= 0")
    _require(perm >= 0.0, f"cells[{index}].erasure_per_symbol_day must be >= 0")
    tsc = raw.get("scrub_period_seconds")
    if tsc is not None:
        _require(
            isinstance(tsc, (int, float)) and not isinstance(tsc, bool)
            and tsc >= 0.0,
            f"cells[{index}].scrub_period_seconds must be a number >= 0 "
            "or null",
        )
        tsc = float(tsc)
    pattern = raw.get("pattern")
    schedule = raw.get("schedule")
    try:
        if pattern is not None:
            _require(isinstance(pattern, str), "pattern must be a string")
            parse_pattern(pattern)
        if schedule is not None:
            _require(isinstance(schedule, str), "schedule must be a string")
        parse_schedule(schedule)
    except ValueError as exc:
        raise SpecError(f"cells[{index}]: {exc}") from None
    return CampaignCell(
        arrangement=arrangement,
        seu_per_bit_day=seu,
        erasure_per_symbol_day=perm,
        scrub_period_seconds=tsc,
        pattern=pattern,
        schedule=schedule,
    )


def _parse_stopping(raw: Any) -> Optional[StoppingRule]:
    if raw is None:
        return None
    _require(
        isinstance(raw, dict),
        f"'stopping' must be an object or null, got {raw!r}",
    )
    unknown = set(raw) - {"rel_ci", "min_trials", "method", "confidence"}
    _require(not unknown, f"stopping: unknown field(s) {sorted(unknown)}")
    _require("rel_ci" in raw, "stopping.rel_ci is required")
    rel_ci = raw["rel_ci"]
    _require(
        isinstance(rel_ci, (int, float)) and not isinstance(rel_ci, bool),
        "stopping.rel_ci must be a number",
    )
    min_trials = _as_int(raw, "min_trials", 0)
    method = raw.get("method", "wilson")
    _require(
        method in INTERVAL_METHODS,
        f"stopping.method must be one of {INTERVAL_METHODS}, got {method!r}",
    )
    confidence = _as_number(raw, "confidence", 0.95)
    _require(
        0.0 < confidence < 1.0, "stopping.confidence must be in (0, 1)"
    )
    try:
        return StoppingRule(
            rel_ci=float(rel_ci),
            min_trials=min_trials,
            method=method,
            confidence=confidence,
        )
    except ValueError as exc:
        raise SpecError(f"stopping: {exc}") from None


def parse_spec(payload: Any) -> Tuple[str, CampaignSpec]:
    """Validate a submitted JSON document into ``(tenant, CampaignSpec)``.

    Every constraint the CLI enforces with exit code 2 is enforced here
    with :class:`SpecError` (the HTTP layer maps it to 400): the service
    must never hand the runtime a configuration the CLI would have
    refused.  A ``scenario`` name expands to the preset's cells and
    pinned defaults, overridable by explicit ``trials``/``seed``.
    """
    _require(
        isinstance(payload, dict),
        f"spec must be a JSON object, got {type(payload).__name__}",
    )
    unknown = set(payload) - {
        "cells",
        "scenario",
        "n",
        "k",
        "m",
        "t_end_hours",
        "trials",
        "seed",
        "engine",
        "chunk_size",
        "stopping",
        "workers",
        "executor",
        "tenant",
    }
    _require(not unknown, f"unknown field(s): {sorted(unknown)}")

    tenant = payload.get("tenant", DEFAULT_TENANT)
    _require(
        isinstance(tenant, str)
        and 0 < len(tenant) <= MAX_TENANT_LENGTH
        and all(c.isalnum() or c in "-_." for c in tenant),
        "tenant must be a short name of [alnum - _ .] characters",
    )

    scenario_name = payload.get("scenario")
    scenario = None
    if scenario_name is not None:
        _require(
            isinstance(scenario_name, str), "'scenario' must be a string"
        )
        _require(
            "cells" not in payload,
            "'scenario' and explicit 'cells' are exclusive",
        )
        try:
            scenario = get_scenario(scenario_name)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
        cells: List[CampaignCell] = list(scenario.cells)
        defaults = {
            "n": scenario.n,
            "k": scenario.k,
            "m": scenario.m,
            "t_end_hours": scenario.t_end_hours,
            "trials": scenario.trials,
            "seed": scenario.seed,
        }
    else:
        raw_cells = payload.get("cells")
        _require(
            isinstance(raw_cells, list) and raw_cells,
            "spec needs a non-empty 'cells' list or a 'scenario' name",
        )
        _require(
            len(raw_cells) <= MAX_CELLS,
            f"too many cells ({len(raw_cells)} > {MAX_CELLS})",
        )
        cells = [_parse_cell(raw, i) for i, raw in enumerate(raw_cells)]
        defaults = {
            "n": 18,
            "k": 16,
            "m": 8,
            "t_end_hours": 48.0,
            "trials": 300,
            "seed": 2005,
        }

    n = _as_int(payload, "n", defaults["n"])
    k = _as_int(payload, "k", defaults["k"])
    m = _as_int(payload, "m", defaults["m"])
    _require(1 <= m <= 16, f"m must be in [1, 16], got {m}")
    _require(0 < k < n, f"need 0 < k < n, got n={n} k={k}")
    _require(
        n <= (1 << m) - 1,
        f"n must fit the field: n <= 2^m - 1 = {(1 << m) - 1}, got {n}",
    )
    t_end_hours = _as_number(payload, "t_end_hours", defaults["t_end_hours"])
    _require(t_end_hours > 0.0, f"t_end_hours must be > 0, got {t_end_hours}")
    trials = _as_int(payload, "trials", defaults["trials"])
    _require(
        0 < trials <= MAX_TRIALS,
        f"trials must be in [1, {MAX_TRIALS}], got {trials}",
    )
    seed = _as_int(payload, "seed", defaults["seed"])
    _require(seed >= 0, f"seed must be >= 0, got {seed}")
    engine = payload.get("engine", "batch")
    _require(
        engine in ENGINE_CHOICES,
        f"engine must be one of {ENGINE_CHOICES}, got {engine!r}",
    )
    # Family is a pure function of the name — spec validation must not
    # depend on this host's capabilities (an unavailable compiled
    # backend fails the *job*, loudly, not the submission digest).
    engine_family = "reference" if engine == "reference" else "batch"
    chunk_size = _as_int(payload, "chunk_size", 512)
    _require(chunk_size > 0, f"chunk_size must be positive, got {chunk_size}")
    stop = _parse_stopping(payload.get("stopping"))
    _require(
        stop is None or engine_family == "batch",
        "adaptive stopping requires a batch-family engine",
    )
    workers = _as_int(payload, "workers", 1)
    _require(1 <= workers <= 64, f"workers must be in [1, 64], got {workers}")
    executor = payload.get("executor")
    _require(
        executor is None or executor in EXECUTOR_NAMES,
        f"executor must be one of {EXECUTOR_NAMES} or null, "
        f"got {executor!r}",
    )
    _require(
        executor is None or engine_family == "batch",
        "an explicit executor requires a batch-family engine",
    )
    return tenant, CampaignSpec(
        cells=tuple(cells),
        n=n,
        k=k,
        m=m,
        t_end_hours=t_end_hours,
        trials=trials,
        seed=seed,
        engine=engine,
        chunk_size=chunk_size,
        stop=stop,
        workers=workers,
        executor=executor,
        scenario=scenario_name,
    )


@dataclass
class Job:
    """One submitted campaign and its lifecycle state."""

    id: str
    tenant: str
    spec: CampaignSpec
    digest: str
    state: str = "queued"
    #: True when the terminal result was served from the cache without
    #: running a single trial.
    cached: bool = False
    error: Optional[str] = None
    #: Content address of the result entry (equals ``digest`` once done).
    result_digest: Optional[str] = None
    #: Incremental BER snapshots (``BerSnapshot.as_dict`` plus cell
    #: attribution), appended as chunks land — the NDJSON stream source.
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-job trace records (when the job held the trace slot).
    trace_records: Optional[List[Dict[str, Any]]] = None
    #: Backend the run actually resolved to (``compiled``/``numpy``/...),
    #: an execution fact outside the cache key — every batch backend is
    #: bit-identical, so jobs differing only here share one cache entry.
    engine_resolved: Optional[str] = None
    #: Per-chunk decode-kernel telemetry
    #: (``{"cell", "chunk", "kernel_seconds"}`` rows from the chunk
    #: journal), filled when the run completes.
    kernel_seconds: List[Dict[str, Any]] = field(default_factory=list)

    def status_dict(self) -> Dict[str, Any]:
        """The poll-endpoint view of this job."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "fingerprint_digest": self.digest,
            "cached": self.cached,
            "error": self.error,
            "result_digest": self.result_digest,
            "snapshots": len(self.snapshots),
            "scenario": self.spec.scenario,
            "trials": self.spec.trials,
            "cells": len(self.spec.cells),
            "engine": self.spec.engine,
            "engine_resolved": self.engine_resolved,
            "kernel_seconds": list(self.kernel_seconds),
        }


def rows_payload(rows: Sequence) -> List[Dict[str, Any]]:
    """Serialize campaign rows exactly like the run manifest does.

    One serialization for manifests and cached results keeps the
    acceptance invariant checkable bytewise: a cache hit returns the
    same JSON a fresh run would have produced.
    """
    out: List[Dict[str, Any]] = []
    for row in rows:
        est = row.estimate
        out.append(
            {
                "cell": row.cell.label(),
                "pattern": row.cell.pattern,
                "schedule": row.cell.schedule,
                "model_fail_probability": row.model_fail_probability,
                "probability": est.probability,
                "failures": est.failures,
                "trials": est.trials,
                "ci_low": est.ci_low,
                "ci_high": est.ci_high,
                "outcome_counts": est.outcome_counts,
                "silent_miscorrections": est.silent_miscorrections,
                "detected_uncorrectable": est.detected_uncorrectable,
                "stopped_early": est.stopped_early,
                "consistent": row.consistent,
            }
        )
    return out
