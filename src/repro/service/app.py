"""The asyncio HTTP/JSON front of the campaign service (stdlib only).

A deliberately small HTTP/1.1 server — ``asyncio.start_server`` plus a
hand-rolled request parser — because the repo's no-new-dependencies rule
applies to the serving layer too.  One request per connection
(``Connection: close``), JSON in, JSON out, NDJSON for streams.

Endpoints::

    POST /v1/jobs                submit a campaign spec -> job id
    GET  /v1/jobs                job listing (newest last)
    GET  /v1/jobs/{id}           poll job status
    GET  /v1/jobs/{id}/stream    NDJSON: BER snapshots as chunks land,
                                 then one terminal status line
    GET  /v1/jobs/{id}/result    final result document (from the cache)
    GET  /v1/jobs/{id}/trace     per-job trace records as JSONL
    GET  /metrics                Prometheus text exposition of the obs
                                 metrics registry
    GET  /healthz                liveness probe

Blocking scheduler calls (journal fsyncs, condition waits) run in the
event loop's default thread-pool executor, so a slow disk cannot stall
every connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs.metrics import render_prometheus
from .protocol import SpecError
from .scheduler import CampaignScheduler

#: Request hygiene limits: a public endpoint reads untrusted bytes.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024
#: How much of a rejected (oversized) body we are willing to read and
#: discard so the client can finish sending and see the 413 instead of
#: dying on EPIPE.  Larger bodies are simply disconnected.
MAX_DRAIN_BYTES = 8 * 1024 * 1024

#: How often a stream endpoint re-checks for new snapshots.
STREAM_POLL_SECONDS = 0.05

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """Malformed HTTP request (before routing)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _response_head(
    status: int, content_type: str, length: Optional[int]
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("utf-8")


class ServiceApp:
    """Routing and handlers over a :class:`CampaignScheduler`."""

    def __init__(self, scheduler: CampaignScheduler):
        self.scheduler = scheduler

    # -- plumbing ----------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        registry = obs_metrics.get_registry()
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
            except _BadRequest as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            registry.counter("repro.service.http_requests").inc()
            try:
                await self._route(writer, method, path, body)
            except (ConnectionError, BrokenPipeError):
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 - keep the server alive
                registry.counter("repro.service.http_errors").inc()
                try:
                    await self._send_json(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                except (ConnectionError, BrokenPipeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest(413, "headers too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest(413, "headers too large")
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise _BadRequest(400, "undecodable request head") from None
        request_line, *header_lines = text.split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(
                400, f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise _BadRequest(400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            await self._drain(reader, length)
            raise _BadRequest(
                413, f"body too large ({length} > {MAX_BODY_BYTES})"
            )
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _drain(self, reader: asyncio.StreamReader, length: int) -> None:
        budget = min(length, MAX_DRAIN_BYTES)
        try:
            while budget > 0:
                chunk = await reader.read(min(65536, budget))
                if not chunk:
                    return
                budget -= len(chunk)
        except (ConnectionError, OSError):
            return

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(_response_head(status, "application/json", len(body)))
        writer.write(body)
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
    ) -> None:
        body = text.encode("utf-8")
        writer.write(_response_head(status, content_type, len(body)))
        writer.write(body)
        await writer.drain()

    async def _in_thread(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            None, fn, *args
        )

    # -- routing -----------------------------------------------------------

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"ok": True})
            return
        if path == "/metrics":
            if method != "GET":
                await self._send_json(writer, 405, {"error": "GET only"})
                return
            await self._send_text(
                writer,
                200,
                render_prometheus(obs_metrics.get_registry()),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(writer, body)
            elif method == "GET":
                jobs = await self._in_thread(self.scheduler.list_jobs)
                await self._send_json(writer, 200, {"jobs": jobs})
            else:
                await self._send_json(
                    writer, 405, {"error": "GET or POST only"}
                )
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, sub = rest.partition("/")
            if method != "GET":
                await self._send_json(writer, 405, {"error": "GET only"})
                return
            job = self.scheduler.get_job(job_id)
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"no such job {job_id!r}"}
                )
                return
            if sub == "":
                await self._send_json(writer, 200, job.status_dict())
            elif sub == "stream":
                await self._stream(writer, job_id)
            elif sub == "result":
                await self._result(writer, job)
            elif sub == "trace":
                await self._trace(writer, job)
            else:
                await self._send_json(
                    writer, 404, {"error": f"unknown endpoint {sub!r}"}
                )
            return
        await self._send_json(writer, 404, {"error": f"no route for {path}"})

    # -- handlers ----------------------------------------------------------

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            await self._send_json(
                writer, 400, {"error": f"body is not JSON: {exc}"}
            )
            return
        try:
            outcome = await self._in_thread(self.scheduler.submit, payload)
        except SpecError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        await self._send_json(writer, 200, outcome.as_dict())

    async def _stream(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        """NDJSON: every snapshot so far, new ones as they land, then a
        terminal ``{"kind": "status", ...}`` line."""
        writer.write(_response_head(200, "application/x-ndjson", None))
        await writer.drain()
        cursor = 0
        while True:
            snapshots, state = await self._in_thread(
                self.scheduler.snapshots_since, job_id, cursor
            )
            for snap in snapshots:
                line = dict(snap)
                line["kind"] = "snapshot"
                writer.write((json.dumps(line) + "\n").encode("utf-8"))
            cursor += len(snapshots)
            if snapshots:
                await writer.drain()
            if state in ("done", "failed"):
                job = self.scheduler.get_job(job_id)
                final = {"kind": "status"}
                final.update(job.status_dict())
                writer.write((json.dumps(final) + "\n").encode("utf-8"))
                await writer.drain()
                return
            await asyncio.sleep(STREAM_POLL_SECONDS)

    async def _result(self, writer: asyncio.StreamWriter, job) -> None:
        if job.state == "failed":
            await self._send_json(
                writer,
                409,
                {"error": f"job failed: {job.error}", "state": job.state},
            )
            return
        if job.state != "done":
            await self._send_json(
                writer,
                409,
                {"error": "job not finished", "state": job.state},
            )
            return
        entry = await self._in_thread(self.scheduler.result_entry, job)
        if entry is None:
            await self._send_json(
                writer,
                500,
                {"error": "result entry missing or failed verification"},
            )
            return
        await self._send_json(
            writer,
            200,
            {
                "job_id": job.id,
                "cached": job.cached,
                "fingerprint_digest": entry["fingerprint_digest"],
                "fingerprint": entry["fingerprint"],
                "result": entry["result"],
            },
        )

    async def _trace(self, writer: asyncio.StreamWriter, job) -> None:
        if job.trace_records is None:
            await self._send_json(
                writer,
                404,
                {
                    "error": "no trace for this job (another job held the "
                    "trace slot, it ran before this server start, or it "
                    "has not run yet)"
                },
            )
            return
        text = "".join(
            json.dumps(record) + "\n" for record in job.trace_records
        )
        await self._send_text(writer, 200, text, "application/x-ndjson")


class ServiceServer:
    """Bind/serve wrapper around :class:`ServiceApp`.

    ``port=0`` binds an ephemeral port; :attr:`port` reports the actual
    one after :meth:`start`.
    """

    def __init__(
        self,
        scheduler: CampaignScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.scheduler = scheduler
        self.app = ServiceApp(scheduler)
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self.app.handle_connection,
            host=self.host,
            port=self.requested_port,
            limit=MAX_HEADER_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


def start_in_thread(
    scheduler: CampaignScheduler,
    host: str = "127.0.0.1",
    port: int = 0,
) -> "ThreadedServer":
    """Run a :class:`ServiceServer` on a background event-loop thread.

    The embedding entry point (tests, notebooks): returns once the
    socket is bound, with the actual port resolved.
    """
    handle = ThreadedServer(scheduler, host, port)
    handle.start()
    return handle


class ThreadedServer:
    """A server + event loop confined to one daemon thread."""

    def __init__(self, scheduler: CampaignScheduler, host: str, port: int):
        self.server = ServiceServer(scheduler, host, port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self._started = None

    @property
    def port(self) -> int:
        if self.server.port is None:
            raise RuntimeError("server not started")
        return self.server.port

    def start(self) -> None:
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("service HTTP thread failed to start")

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            try:
                await self.server._server.serve_forever()
            except asyncio.CancelledError:
                pass

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None:
            return

        def _shutdown() -> None:
            for task in asyncio.all_tasks(self._loop):
                task.cancel()

        self._loop.call_soon_threadsafe(_shutdown)
        self._thread.join(timeout=10.0)
