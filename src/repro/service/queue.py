"""Persistent job queue journaled with the durable-state integrity layer.

The queue is an event-sourced append-only journal using the exact v2
framing of checkpoint journals (:mod:`repro.runtime.integrity`): every
line carries a CRC-32C and a SHA-256 hash-chain field, damage is
classified on load (torn tails truncated, mid-file corruption
quarantined to a sidecar), and an advisory
:class:`~repro.runtime.integrity.JournalLock` keeps two servers from
interleaving appends into one queue.

Record kinds::

    {"kind": "header", "queue_schema": 1}
    {"kind": "job",   "id", "seq", "tenant", "digest", "spec": {...}}
    {"kind": "state", "id", "state", "result_digest"?, "error"?,
     "cached"?}

Replaying the journal reconstructs every job; a job whose last recorded
state is ``running`` is reverted to ``queued`` — the run died with the
server, and because its Monte-Carlo chunks live in a per-digest
checkpoint journal, the re-run is a resume, not a recompute.  That is
the whole restart story: SIGKILL the server, start it again, and the
job finishes bit-identically.
"""

from __future__ import annotations

import errno
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..runtime.integrity import (
    CHAIN_SEED,
    JournalLock,
    frame_record,
    fsync_dir,
    rewrite_journal,
    scan_journal,
    write_quarantine,
)
from .protocol import JOB_STATES, Job, SpecError, parse_spec

QUEUE_SCHEMA = 1


class QueueError(RuntimeError):
    """The queue journal is unusable (not a damage classification)."""


class JobQueue:
    """Durable, replayable job store behind the scheduler.

    All mutation goes through :meth:`add` and :meth:`mark`; both append
    a framed record with ``flush`` + ``fsync`` before returning, so an
    acknowledged submission survives any crash.  Like the checkpoint
    journal, a failing disk degrades the queue to memory-only (loudly:
    counter, trace event, warning) instead of taking the server down
    mid-request.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Eager: a second server on the same state dir must fail at
        # startup (JournalLockedError -> exit 75), not at first append.
        self._lock = JournalLock(self.path).acquire()
        self._fh = None
        self._chain = CHAIN_SEED
        self._seq = 0
        self.jobs: Dict[str, Job] = {}
        #: Submission order (journal replay order) of job ids.
        self.order: List[str] = []
        self.records_quarantined = 0
        self.io_errors = 0
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        scan = scan_journal(self.path)
        if not scan.exists:
            return
        if scan.version == 1:
            raise QueueError(
                f"queue journal {self.path} is not a framed v2 file"
            )
        records = [record for _line_no, record in scan.records]
        if scan.mid_file:
            self._lock.acquire()
            write_quarantine(self.path, list(scan.mid_file), reason="load")
            rewrite_journal(self.path, records)
            self.records_quarantined = len(scan.mid_file)
            obs_metrics.get_registry().counter(
                "repro.service.queue_quarantined"
            ).inc(self.records_quarantined)
            trace.event(
                "queue_quarantine",
                journal=str(self.path),
                records=self.records_quarantined,
            )
        elif scan.torn_tail:
            self._lock.acquire()
            rewrite_journal(self.path, records)
        self._ingest(records)
        chain = CHAIN_SEED
        for record in records:
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            _line, chain = frame_record(payload, chain)
        self._chain = chain
        # A job the dead server left "running" is not running any more.
        # Re-queue it in memory only: its journal history stays truthful
        # (job -> running -> <crash>), and the next `mark(running)` is
        # the resume record.
        for job in self.jobs.values():
            if job.state == "running":
                job.state = "queued"

    def _ingest(self, records: List[Dict[str, Any]]) -> None:
        for record in records:
            kind = record.get("kind")
            if kind == "header":
                if record.get("queue_schema") != QUEUE_SCHEMA:
                    raise QueueError(
                        f"queue journal {self.path} has schema "
                        f"{record.get('queue_schema')!r}, expected "
                        f"{QUEUE_SCHEMA}"
                    )
            elif kind == "job":
                self._ingest_job(record)
            elif kind == "state":
                self._ingest_state(record)
            # Unknown kinds skip (forward compatibility).

    def _ingest_job(self, record: Dict[str, Any]) -> None:
        try:
            job_id = str(record["id"])
            seq = int(record["seq"])
            raw_spec = dict(record["spec"])
        except (KeyError, TypeError, ValueError):
            return  # wrong shape: skip rather than kill the server
        try:
            tenant, spec = parse_spec(raw_spec)
        except SpecError:
            return  # a spec this build cannot parse cannot be run
        job = Job(
            id=job_id, tenant=tenant, spec=spec, digest=spec.digest()
        )
        self.jobs[job_id] = job
        if job_id not in self.order:
            self.order.append(job_id)
        self._seq = max(self._seq, seq + 1)

    def _ingest_state(self, record: Dict[str, Any]) -> None:
        job = self.jobs.get(str(record.get("id")))
        state = record.get("state")
        if job is None or state not in JOB_STATES:
            return
        job.state = state
        if "result_digest" in record:
            job.result_digest = record["result_digest"]
        if "error" in record:
            job.error = record["error"]
        if record.get("cached"):
            job.cached = True

    # -- writing -----------------------------------------------------------

    def _open_for_append(self):
        if self._fh is None:
            self._lock.acquire()
            created = not self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            if created:
                fsync_dir(self.path.parent)
                self._append({"kind": "header", "queue_schema": QUEUE_SCHEMA})
        return self._fh

    def _append(self, record: Dict[str, Any]) -> None:
        if self.degraded:
            return
        try:
            fh = self._fh if self._fh is not None else self._open_for_append()
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            line, chain = frame_record(payload, self._chain)
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
            self._chain = chain
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        self.io_errors += 1
        self.degraded = True
        self.degraded_reason = (
            f"{errno.errorcode.get(exc.errno, exc.errno)}: {exc}"
            if exc.errno
            else repr(exc)
        )
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        obs_metrics.get_registry().counter(
            "repro.service.queue_io_errors"
        ).inc()
        trace.event(
            "queue_io_error",
            journal=str(self.path),
            error=self.degraded_reason,
        )
        warnings.warn(
            f"queue journal {self.path}: write failed "
            f"({self.degraded_reason}); continuing in memory — submitted "
            "jobs will not survive a restart",
            _resilience_warning(),
            stacklevel=4,
        )

    # -- protocol ----------------------------------------------------------

    def add(self, tenant: str, spec, raw_spec: Dict[str, Any]) -> Job:
        """Persist a new job; the returned id is stable across restarts."""
        job_id = f"j{self._seq:08d}"
        job = Job(id=job_id, tenant=tenant, spec=spec, digest=spec.digest())
        self._append(
            {
                "kind": "job",
                "id": job_id,
                "seq": self._seq,
                "tenant": tenant,
                "digest": job.digest,
                "spec": raw_spec,
            }
        )
        self._seq += 1
        self.jobs[job_id] = job
        self.order.append(job_id)
        return job

    def mark(
        self,
        job: Job,
        state: str,
        *,
        result_digest: Optional[str] = None,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        """Durably record a state transition (and mirror it in memory)."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        record: Dict[str, Any] = {"kind": "state", "id": job.id, "state": state}
        if result_digest is not None:
            record["result_digest"] = result_digest
        if error is not None:
            record["error"] = error
        if cached:
            record["cached"] = True
        self._append(record)
        job.state = state
        if result_digest is not None:
            job.result_digest = result_digest
        if error is not None:
            job.error = error
        if cached:
            job.cached = True

    def active_by_digest(self, digest: str) -> Optional[Job]:
        """The queued/running job for ``digest``, if any (for coalescing)."""
        for job_id in self.order:
            job = self.jobs[job_id]
            if job.digest == digest and job.state in ("queued", "running"):
                return job
        return None

    def queued_jobs(self) -> List[Job]:
        """Queued jobs in stable submission order."""
        return [
            self.jobs[job_id]
            for job_id in self.order
            if self.jobs[job_id].state == "queued"
        ]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._lock.release()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resilience_warning():
    from ..runtime.supervisor import ResilienceWarning

    return ResilienceWarning
