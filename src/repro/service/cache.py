"""Content-addressed result cache keyed by campaign fingerprints.

The cache's key space *is* the journal-binding identity: the SHA-256
digest of the canonical JSON of
:func:`repro.simulator.campaign.campaign_fingerprint` (one
canonicalization, shared with ``--checkpoint`` journals and manifests).
Two requests with equal fingerprints are guaranteed bit-identical
results by the runtime's determinism contract, so serving the second
from cache is not an approximation — it is the same answer.

Layout (``repro doctor``-style auditable, two-level fan-out so a busy
cache never puts millions of entries in one directory)::

    cache/
      ab/
        ab3f...e2.json          # entry, written atomically
        ab3f...e2.json.quarantine  # a failed self-check, moved aside

Every entry embeds its own fingerprint digest and a SHA-256 over its
canonical body, so a flipped byte is detected on read: the damaged entry
is moved to a ``.quarantine`` sidecar (never silently served, never
silently deleted) and the read degrades to a miss — the campaign simply
recomputes, exactly the checkpoint-journal healing contract.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..ioutil import atomic_write
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..simulator.campaign import fingerprint_digest

CACHE_SCHEMA = 1

_DIGEST_HEX_LENGTH = 64


def _canonical_body(entry: Dict[str, Any]) -> str:
    """The canonical JSON the embedded ``body_sha256`` covers."""
    body = {k: v for k, v in entry.items() if k != "body_sha256"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _body_sha256(entry: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical_body(entry).encode("utf-8")).hexdigest()


class ResultCache:
    """Atomic, self-verifying, content-addressed campaign results."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- addressing --------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        if (
            len(digest) != _DIGEST_HEX_LENGTH
            or not all(c in "0123456789abcdef" for c in digest)
        ):
            raise ValueError(f"not a sha-256 hex digest: {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    # -- read --------------------------------------------------------------

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The verified cache entry for ``digest``, or ``None`` (miss).

        A structurally broken or self-check-failing entry is
        quarantined and reported as a miss; it cannot poison a response.
        """
        registry = obs_metrics.get_registry()
        path = self.path_for(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            registry.counter("repro.service.cache_misses").inc()
            return None
        entry: Optional[Dict[str, Any]]
        try:
            entry = json.loads(raw)
        except ValueError:
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or entry.get("fingerprint_digest") != digest
            or entry.get("body_sha256") != _body_sha256(entry)
        ):
            self._quarantine(path, digest)
            registry.counter("repro.service.cache_misses").inc()
            return None
        registry.counter("repro.service.cache_hits").inc()
        return entry

    def _quarantine(self, path: Path, digest: str) -> None:
        quarantined = path.with_suffix(path.suffix + ".quarantine")
        try:
            os.replace(path, quarantined)
        except OSError:
            return
        obs_metrics.get_registry().counter(
            "repro.service.cache_quarantined"
        ).inc()
        trace.event(
            "cache_quarantine", digest=digest, path=str(quarantined)
        )

    # -- write -------------------------------------------------------------

    def put(
        self,
        fingerprint: Dict[str, Any],
        result: Dict[str, Any],
    ) -> Path:
        """Store ``result`` under its fingerprint's content address.

        The full fingerprint rides inside the entry, so an auditor can
        recompute the address from the content alone — the definition of
        content-addressed storage.  The write is atomic; concurrent
        writers of one digest are therefore last-writer-wins over
        *identical* content.
        """
        digest = fingerprint_digest(fingerprint)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint_digest": digest,
            "fingerprint": fingerprint,
            "result": result,
        }
        entry["body_sha256"] = _body_sha256(entry)
        path = self.path_for(digest)
        atomic_write(path, json.dumps(entry, indent=2, sort_keys=True) + "\n")
        obs_metrics.get_registry().counter("repro.service.cache_writes").inc()
        return path

    # -- audit -------------------------------------------------------------

    def audit(self) -> Dict[str, Any]:
        """Verify every entry in place (read-only; nothing quarantined).

        Returns a doctor-style report: per-entry verdicts plus the
        address check (an entry filed under a digest its own fingerprint
        does not hash to is misfiled, even if internally consistent).
        """
        entries: List[Dict[str, Any]] = []
        healthy = True
        for path in sorted(self.root.glob("*/*.json")):
            digest = path.stem
            verdict = "healthy"
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                entry = None
            if not isinstance(entry, dict):
                verdict = "unreadable"
            elif entry.get("schema") != CACHE_SCHEMA:
                verdict = "unknown-schema"
            elif entry.get("body_sha256") != _body_sha256(entry):
                verdict = "body-hash-mismatch"
            elif entry.get("fingerprint_digest") != digest:
                verdict = "misfiled"
            elif fingerprint_digest(entry.get("fingerprint", {})) != digest:
                verdict = "address-mismatch"
            healthy = healthy and verdict == "healthy"
            entries.append({"path": str(path), "verdict": verdict})
        quarantined = [str(p) for p in sorted(self.root.glob("*/*.quarantine"))]
        return {
            "root": str(self.root),
            "entries": entries,
            "quarantined": quarantined,
            "healthy": healthy,
        }
