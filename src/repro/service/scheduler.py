"""Job scheduler: executor-tier dispatch with tenant caps and coalescing.

The scheduler owns the service's compute story:

* **one execution per fingerprint** — a submission whose digest matches
  a finished cache entry completes instantly (``cached``); one matching
  a queued/running job returns *that* job (``coalesced``), so a
  thundering herd of identical requests costs one campaign;
* **per-tenant concurrency caps** — worker threads claim queued jobs in
  submission order, skipping tenants already at their cap, so one
  tenant's burst cannot starve the rest;
* **executor tier** — each job runs through
  :func:`repro.simulator.campaign.run_campaign` with a
  :class:`~repro.runtime.RuntimeConfig` selecting the PR 6 backend
  (serial / pool / lease / fleet) the spec asked for;
* **restart resume** — batch jobs journal their chunks to a per-digest
  checkpoint journal under the state dir; after a crash the queue
  replays the job as ``queued`` and the re-run replays completed chunks
  bit-identically.

Cached results deliberately contain only deterministic fields (rows and
summary) — timing and throughput live in the metrics registry — so a
resumed run's cache entry is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs import trace
from ..perf import PerfCounters
from ..rs.backends import resolve_engine
from ..runtime import CheckpointJournal, RuntimeConfig
from ..simulator.campaign import campaign_summary, run_campaign
from .cache import ResultCache
from .protocol import Job, parse_spec, rows_payload
from .queue import JobQueue


class SubmitOutcome:
    """What a submission resolved to: a fresh, coalesced, or cached job."""

    __slots__ = ("job", "cached", "coalesced", "state")

    def __init__(self, job: Job, cached: bool, coalesced: bool):
        self.job = job
        self.cached = cached
        self.coalesced = coalesced
        # Snapshotted under the queue lock: a worker thread may flip the
        # job to "running" before the caller serializes this outcome.
        self.state = job.state

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job.id,
            "fingerprint_digest": self.job.digest,
            "state": self.state,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }


class CampaignScheduler:
    """Thread-pool scheduler over the durable queue and result cache."""

    def __init__(
        self,
        state_dir: Union[str, Path],
        *,
        max_jobs: int = 2,
        tenant_cap: int = 1,
    ):
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        if tenant_cap < 1:
            raise ValueError(f"tenant_cap must be >= 1, got {tenant_cap}")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.max_jobs = max_jobs
        self.tenant_cap = tenant_cap
        self.cache = ResultCache(self.state_dir / "cache")
        self.queue = JobQueue(self.state_dir / "queue.journal")
        self._cv = threading.Condition()
        self._running_by_tenant: Dict[str, int] = {}
        self._claimed: set = set()
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self._trace_slot = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CampaignScheduler":
        """Start the worker threads (resumed jobs are already queued)."""
        for i in range(self.max_jobs):
            thread = threading.Thread(
                target=self._worker, name=f"repro-service-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._publish_depth()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting work and release the queue lock.

        In-flight jobs are abandoned mid-run (their ``running`` state
        reverts to ``queued`` on the next start — the crash-safe path is
        also the shutdown path).
        """
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.queue.close()

    # -- submission --------------------------------------------------------

    def submit(self, payload: Any) -> SubmitOutcome:
        """Resolve a raw spec document to a job (raises ``SpecError``)."""
        tenant, spec = parse_spec(payload)
        digest = spec.digest()
        registry = obs_metrics.get_registry()
        with self._cv:
            active = self.queue.active_by_digest(digest)
            if active is not None:
                registry.counter("repro.service.jobs_coalesced").inc()
                trace.event(
                    "service_coalesced", job=active.id, digest=digest
                )
                return SubmitOutcome(active, cached=False, coalesced=True)
            entry = self.cache.get(digest)
            job = self.queue.add(tenant, spec, payload)
            registry.counter("repro.service.jobs_submitted").inc()
            if entry is not None:
                self.queue.mark(
                    job, "done", result_digest=digest, cached=True
                )
                self._cv.notify_all()
                self._publish_depth()
                return SubmitOutcome(job, cached=True, coalesced=False)
            self._cv.notify_all()
            self._publish_depth()
            return SubmitOutcome(job, cached=False, coalesced=False)

    # -- introspection -----------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._cv:
            return self.queue.jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._cv:
            return [
                self.queue.jobs[job_id].status_dict()
                for job_id in self.queue.order
            ]

    def result_entry(self, job: Job) -> Optional[Dict[str, Any]]:
        """The verified cache entry backing a done job's result."""
        if job.result_digest is None:
            return None
        return self.cache.get(job.result_digest)

    def snapshots_since(
        self, job_id: str, cursor: int
    ) -> Tuple[List[Dict[str, Any]], str]:
        """New snapshot dicts past ``cursor`` plus the job's state."""
        with self._cv:
            job = self.queue.jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return list(job.snapshots[cursor:]), job.state

    def wait(self, job_id: str, timeout: Optional[float] = None) -> str:
        """Block until the job reaches a terminal state; returns it."""
        with self._cv:
            self._cv.wait_for(
                lambda: self.queue.jobs[job_id].state in ("done", "failed")
                or self._stopping,
                timeout=timeout,
            )
            return self.queue.jobs[job_id].state

    # -- worker loop -------------------------------------------------------

    def _claimable(self) -> Optional[Job]:
        for job in self.queue.queued_jobs():
            if job.id in self._claimed:
                continue
            if (
                self._running_by_tenant.get(job.tenant, 0)
                >= self.tenant_cap
            ):
                continue
            return job
        return None

    def _worker(self) -> None:
        while True:
            with self._cv:
                job = None
                while not self._stopping:
                    job = self._claimable()
                    if job is not None:
                        break
                    self._cv.wait(timeout=0.2)
                if self._stopping or job is None:
                    return
                self._claimed.add(job.id)
                self._running_by_tenant[job.tenant] = (
                    self._running_by_tenant.get(job.tenant, 0) + 1
                )
                self.queue.mark(job, "running")
                self._publish_depth()
            try:
                self._run(job)
            finally:
                with self._cv:
                    self._claimed.discard(job.id)
                    self._running_by_tenant[job.tenant] -= 1
                    self._publish_depth()
                    self._cv.notify_all()

    def _publish_depth(self) -> None:
        registry = obs_metrics.get_registry()
        registry.gauge("repro.service.queue_depth").set(
            len(self.queue.queued_jobs())
        )
        registry.gauge("repro.service.jobs_running").set(
            sum(self._running_by_tenant.values())
        )

    # -- execution ---------------------------------------------------------

    def _chunk_journal_path(self, digest: str) -> Path:
        return self.state_dir / "chunks" / f"{digest}.journal"

    def _on_snapshot(self, job: Job, snap) -> None:
        record = snap.as_dict()
        with self._cv:
            record["seq"] = len(job.snapshots)
            job.snapshots.append(record)
            self._cv.notify_all()

    def _run(self, job: Job) -> None:
        registry = obs_metrics.get_registry()
        spec = job.spec
        counters = PerfCounters()
        journal = None
        collector = None
        traced = self._trace_slot.acquire(blocking=False)
        if traced:
            collector = trace.TraceCollector()
        try:
            # Resolve the engine up front so the poll view reports which
            # backend will actually compute; an unavailable pinned
            # backend raises here and fails the job loudly.
            family, backend = resolve_engine(spec.engine)
            job.engine_resolved = (
                backend if family == "batch" else "reference"
            )
            if family == "batch":
                journal = CheckpointJournal(
                    self._chunk_journal_path(job.digest)
                )
                runtime = RuntimeConfig(
                    journal=journal,
                    executor=spec.executor,
                    stop=spec.stop,
                    on_snapshot=lambda snap: self._on_snapshot(job, snap),
                )
            else:
                runtime = None
            context = (
                trace.use_collector(collector)
                if collector is not None
                else contextlib.nullcontext()
            )
            with context:
                with trace.span(
                    "service_job",
                    job=job.id,
                    tenant=job.tenant,
                    digest=job.digest,
                ):
                    rows = run_campaign(
                        list(spec.cells),
                        n=spec.n,
                        k=spec.k,
                        m=spec.m,
                        t_end_hours=spec.t_end_hours,
                        trials=spec.trials,
                        base_seed=spec.seed,
                        engine=spec.engine,
                        workers=spec.workers,
                        chunk_size=spec.chunk_size,
                        counters=counters,
                        runtime=runtime,
                    )
            # Publish the trace before the terminal state: a client that
            # polls "done" must be able to fetch /trace immediately.
            if collector is not None:
                job.trace_records = collector.records()
            if journal is not None:
                job.kernel_seconds = journal.chunk_kernel_seconds()
            result = {
                "schema": 1,
                "rows": rows_payload(rows),
                "summary": {
                    arrangement: list(counts)
                    for arrangement, counts in campaign_summary(rows).items()
                },
            }
            self.cache.put(spec.fingerprint(), result)
            with self._cv:
                self.queue.mark(job, "done", result_digest=job.digest)
                self._cv.notify_all()
            registry.counter("repro.service.jobs_completed").inc()
        except Exception as exc:  # noqa: BLE001 - a job must not kill the server
            trace.event("service_job_failed", job=job.id, error=str(exc))
            if collector is not None:
                job.trace_records = collector.records()
            with self._cv:
                self.queue.mark(
                    job, "failed", error=f"{type(exc).__name__}: {exc}"
                )
                self._cv.notify_all()
            registry.counter("repro.service.jobs_failed").inc()
        finally:
            if journal is not None:
                journal.close()
            counters.publish(registry)
            if traced:
                self._trace_slot.release()
