"""Campaign service layer: the multi-tenant job API over the runtime.

Seven PRs of runtime plumbing (vectorized engines, checkpoint journals,
supervision, executors, streaming statistics, scenario catalog) end in a
one-shot CLI; this package turns them into a *product surface* — the
ROADMAP's "millions of users" refactor.  The paper's product is a table
of BER-vs-arrangement answers, and identical questions deserve one
computation:

* :mod:`repro.service.protocol` — the wire protocol: campaign-spec
  JSON parsing/validation (:func:`parse_spec`), job states, and the
  single canonicalization shared with journals
  (:func:`repro.simulator.campaign.fingerprint_digest`).
* :mod:`repro.service.cache` — content-addressed result cache keyed by
  the SHA-256 of the canonical campaign fingerprint.  Entries are
  written atomically, self-verifying (embedded body hash), and laid out
  for audit; identical requests are served from cache instead of
  recomputed.
* :mod:`repro.service.queue` — persistent job queue journaled with the
  PR 5 integrity framing (CRC-32C + hash chain, quarantine,
  :class:`~repro.runtime.integrity.JournalLock`); queued and running
  jobs survive server restarts, running jobs re-queue and resume from
  their per-digest chunk journals bit-identically.
* :mod:`repro.service.scheduler` — dispatches jobs onto the PR 6
  executor tier (serial/pool/lease) with per-tenant concurrency caps
  and coalesces concurrent submissions of one fingerprint into a single
  execution.
* :mod:`repro.service.app` — the asyncio HTTP/JSON API (stdlib only):
  submit -> job id, poll status, stream incremental
  :class:`~repro.stats.BerSnapshot` lines as NDJSON, fetch final
  results, scrape ``/metrics`` (Prometheus text format), export per-job
  traces.
"""

from __future__ import annotations

from .app import ServiceApp, ServiceServer, start_in_thread
from .cache import CACHE_SCHEMA, ResultCache
from .protocol import (
    JOB_STATES,
    CampaignSpec,
    Job,
    SpecError,
    parse_spec,
    rows_payload,
)
from .queue import QUEUE_SCHEMA, JobQueue
from .scheduler import CampaignScheduler, SubmitOutcome

__all__ = [
    "CACHE_SCHEMA",
    "CampaignScheduler",
    "CampaignSpec",
    "Job",
    "JobQueue",
    "JOB_STATES",
    "QUEUE_SCHEMA",
    "ResultCache",
    "ServiceApp",
    "ServiceServer",
    "SpecError",
    "SubmitOutcome",
    "parse_spec",
    "rows_payload",
    "start_in_thread",
]
