"""Reliability block combinators.

Series / parallel / k-of-n / standby-sparing compositions over mission
reliabilities — the system-level algebra behind the SSMM architecture of
the paper's reference [6] (modular sparing) and behind extending the
word-level chains to a whole memory (paper Section 4: the extension is a
straightforward product over words).
"""

from __future__ import annotations

import math
from typing import Sequence


def _check_prob(p: float, name: str = "reliability") -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")


def series(reliabilities: Sequence[float]) -> float:
    """All blocks must survive: ``R = prod R_i``."""
    out = 1.0
    for r in reliabilities:
        _check_prob(r)
        out *= r
    return out


def parallel(reliabilities: Sequence[float]) -> float:
    """At least one block survives: ``R = 1 - prod (1 - R_i)``."""
    q = 1.0
    for r in reliabilities:
        _check_prob(r)
        q *= 1.0 - r
    return 1.0 - q


def k_of_n(k: int, n: int, r: float) -> float:
    """At least ``k`` of ``n`` identical blocks survive."""
    if not 0 < k <= n:
        raise ValueError(f"need 0 < k <= n, got k={k}, n={n}")
    _check_prob(r)
    total = 0.0
    for j in range(k, n + 1):
        total += math.comb(n, j) * r**j * (1.0 - r) ** (n - j)
    return min(1.0, total)


def cold_standby(rate_per_hour: float, spares: int, t_hours: float) -> float:
    """Primary plus ``spares`` unpowered spares with perfect switching.

    Failures form a Poisson process of the active unit only, so the system
    survives while at most ``spares`` failures occur:
    ``R = sum_{j<=spares} e^{-λt} (λt)^j / j!`` (Erlang survival).
    """
    if spares < 0:
        raise ValueError("spares must be nonnegative")
    if rate_per_hour < 0 or t_hours < 0:
        raise ValueError("rate and time must be nonnegative")
    lt = rate_per_hour * t_hours
    term = math.exp(-lt)
    total = term
    for j in range(1, spares + 1):
        term *= lt / j
        total += term
    return min(1.0, total)


def whole_memory_data_integrity(word_fail_probability: float, num_words: int) -> float:
    """Probability every word of a memory is readable.

    The word-level chains of :mod:`repro.memory` model one word; the
    paper argues the whole-memory extension is straightforward — under
    word independence it is the product ``(1 - P_word)^W``, computed here
    stably for small ``P_word``.
    """
    _check_prob(word_fail_probability, "word fail probability")
    if num_words <= 0:
        raise ValueError("num_words must be positive")
    if word_fail_probability == 1.0:
        return 0.0
    return math.exp(num_words * math.log1p(-word_fail_probability))
