"""MIL-HDBK-217-style permanent-fault rate estimation.

The paper points to MIL-HDBK-217 [1] and the SSMM design study [6] as the
sources for the permanent-fault rates λe fed to its chains.  The handbook
itself is a (paper) document, so this module encodes its *parts-stress
model form* for monolithic MOS memories:

    λp = (C1 · πT + C2 · πE) · πQ · πL        [failures / 1e6 hours]

with die-complexity factor ``C1`` stepped by memory capacity, an Arrhenius
temperature factor ``πT``, and environment / quality / learning factors.
The coefficient tables below are representative of the handbook's Notice-2
MOS-SRAM values; they produce rates in the same decades the paper sweeps
(λe between 1e-10 and 1e-4 per symbol per day), which is all the chains
need — the paper treats λe as a swept parameter, not a measured one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Die complexity factor C1 for MOS SRAM, stepped by capacity in bits.
_C1_STEPS = (
    (16_384, 0.0052),      # up to 16K
    (65_536, 0.0104),      # up to 64K
    (262_144, 0.0208),     # up to 256K
    (1_048_576, 0.0416),   # up to 1M
    (4_194_304, 0.0832),   # up to 4M
    (16_777_216, 0.1664),  # up to 16M
)

#: Package complexity factor C2 approximation: C2 = 2.8e-4 * pins^1.08.
_C2_COEFF = 2.8e-4
_C2_EXP = 1.08

#: Environment factor πE (selected handbook environments).
ENVIRONMENT_FACTORS = {
    "ground_benign": 0.5,
    "ground_fixed": 2.0,
    "ground_mobile": 4.0,
    "airborne_inhabited": 4.0,
    "airborne_uninhabited": 6.0,
    "space_flight": 0.5,
    "missile_launch": 12.0,
}

#: Quality factor πQ by screening level.
QUALITY_FACTORS = {
    "class_s": 0.25,
    "class_b": 1.0,
    "class_b1": 2.0,
    "commercial": 10.0,
}

_BOLTZMANN_EV = 8.617e-5
_EA_EV = 0.6           # activation energy for MOS memories
_T_REF_K = 298.15      # 25 C reference junction


def temperature_factor(junction_celsius: float) -> float:
    """Arrhenius factor ``πT`` relative to a 25 C reference junction."""
    t_k = junction_celsius + 273.15
    if t_k <= 0:
        raise ValueError("junction temperature below absolute zero")
    return math.exp((_EA_EV / _BOLTZMANN_EV) * (1.0 / _T_REF_K - 1.0 / t_k))


def die_complexity_factor(capacity_bits: int) -> float:
    """Capacity-stepped die complexity factor ``C1``."""
    if capacity_bits <= 0:
        raise ValueError("capacity must be positive")
    for limit, c1 in _C1_STEPS:
        if capacity_bits <= limit:
            return c1
    # beyond the table: continue the doubling pattern
    c1 = _C1_STEPS[-1][1]
    cap = _C1_STEPS[-1][0]
    while capacity_bits > cap:
        cap *= 4
        c1 *= 2
    return c1


def package_factor(pins: int) -> float:
    """Package complexity factor ``C2``."""
    if pins <= 0:
        raise ValueError("pin count must be positive")
    return _C2_COEFF * pins ** _C2_EXP


def learning_factor(years_in_production: float) -> float:
    """Learning factor ``πL``: 2.0 for new processes, settling to 1.0."""
    if years_in_production < 0:
        raise ValueError("years must be nonnegative")
    if years_in_production >= 2.0:
        return 1.0
    return 2.0 - 0.5 * years_in_production


@dataclass(frozen=True)
class MemoryChip:
    """A memory device for parts-stress rate estimation."""

    capacity_bits: int
    pins: int = 32
    junction_celsius: float = 40.0
    environment: str = "space_flight"
    quality: str = "class_b"
    years_in_production: float = 2.0

    def failure_rate_per_1e6_hours(self) -> float:
        """Parts-stress chip failure rate λp in failures / 1e6 hours."""
        try:
            pi_e = ENVIRONMENT_FACTORS[self.environment]
        except KeyError:
            raise ValueError(
                f"unknown environment {self.environment!r}; choose from "
                f"{sorted(ENVIRONMENT_FACTORS)}"
            ) from None
        try:
            pi_q = QUALITY_FACTORS[self.quality]
        except KeyError:
            raise ValueError(
                f"unknown quality {self.quality!r}; choose from "
                f"{sorted(QUALITY_FACTORS)}"
            ) from None
        c1 = die_complexity_factor(self.capacity_bits)
        c2 = package_factor(self.pins)
        pi_t = temperature_factor(self.junction_celsius)
        pi_l = learning_factor(self.years_in_production)
        return (c1 * pi_t + c2 * pi_e) * pi_q * pi_l

    def failure_rate_per_hour(self) -> float:
        """Chip failure rate per hour."""
        return self.failure_rate_per_1e6_hours() * 1e-6

    def symbol_erasure_rate_per_day(self, symbols_per_chip: int) -> float:
        """Per-symbol permanent-fault rate λe in the paper's per-day unit.

        Spreads the chip rate uniformly over the symbols it stores — the
        simplest apportionment, adequate because the paper sweeps λe over
        six decades rather than committing to one value.
        """
        if symbols_per_chip <= 0:
            raise ValueError("symbols_per_chip must be positive")
        return self.failure_rate_per_hour() * 24.0 / symbols_per_chip
