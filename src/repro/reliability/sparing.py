"""Repairable module sparing — Markov availability models (paper ref [6]).

The SSMM architecture the paper builds on ([6], and "modular sparing" in
Section 1) keeps spare memory modules that replace failed ones, with
failed modules repaired (or reconfigured around) at some rate.  These are
classic birth-death availability chains; building them on the package's
own CTMC engine both delivers the feature and exercises the engine's
stationary/absorption machinery on a second model family.

Two standard questions are answered:

* :func:`sparing_mttf_hours` — mean time until more modules are down
  than the spares can cover (no repair, or repair slower than failures);
* :func:`sparing_availability` — steady-state availability with repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..markov import CTMC, build_chain

DOWN = "DOWN"


@dataclass(frozen=True)
class SparingConfig:
    """A pool of identical modules with cold spares and repair.

    Attributes
    ----------
    active:
        Modules that must be operational for the system to be up.
    spares:
        Cold spares (unpowered: they do not fail while waiting).
    fail_rate:
        Per-active-module failure rate (per hour).
    repair_rate:
        Per-repair-crew repair rate (per hour); 0 disables repair.
    repair_crews:
        Parallel repair capacity.
    """

    active: int
    spares: int
    fail_rate: float
    repair_rate: float = 0.0
    repair_crews: int = 1

    def __post_init__(self) -> None:
        if self.active < 1:
            raise ValueError("need at least one active module")
        if self.spares < 0:
            raise ValueError("spares must be nonnegative")
        if self.fail_rate < 0 or self.repair_rate < 0:
            raise ValueError("rates must be nonnegative")
        if self.repair_crews < 1:
            raise ValueError("need at least one repair crew")


def _absorbing_chain(config: SparingConfig) -> CTMC:
    """Failed-module count chain with system-down absorbing (MTTF view)."""

    def transitions(state):
        if state == DOWN:
            return []
        failed = state
        moves = []
        # an active module fails; a spare (if any) swaps in instantly
        next_state = failed + 1 if failed < config.spares else DOWN
        moves.append((next_state, config.active * config.fail_rate))
        if config.repair_rate > 0 and failed > 0:
            crews = min(config.repair_crews, failed)
            moves.append((failed - 1, crews * config.repair_rate))
        return moves

    return build_chain(0, transitions)


def _repairable_chain(config: SparingConfig) -> CTMC:
    """Fully repairable chain (system-down state also repairs back up)."""

    def transitions(state):
        failed = state
        moves = []
        if failed <= config.spares:  # system up: active modules exposed
            moves.append((failed + 1, config.active * config.fail_rate))
        if config.repair_rate > 0 and failed > 0:
            crews = min(config.repair_crews, failed)
            moves.append((failed - 1, crews * config.repair_rate))
        return moves

    return build_chain(0, transitions)


def sparing_mttf_hours(config: SparingConfig) -> float:
    """Mean hours until failures outrun the spare pool."""
    chain = _absorbing_chain(config)
    if DOWN not in chain.index:
        return float("inf")
    return chain.mean_time_to_absorption([DOWN])


def sparing_availability(config: SparingConfig) -> float:
    """Steady-state probability the system is up (requires repair)."""
    if config.repair_rate <= 0:
        return 0.0  # without repair every trajectory eventually dies
    chain = _repairable_chain(config)
    pi = chain.stationary_distribution()
    up = 0.0
    for state, p in zip(chain.states, pi):
        if isinstance(state, int) and state <= config.spares:
            up += float(p)
    return up


def spares_for_mission(
    active: int,
    fail_rate: float,
    mission_hours: float,
    target_reliability: float,
    max_spares: int = 32,
) -> int:
    """Fewest cold spares meeting a mission-survival target (no repair).

    Survival with ``s`` spares is the Erlang(s+1) tail of the pooled
    failure process — evaluated here through the chain for consistency
    with the rest of the package.
    """
    if not 0 < target_reliability < 1:
        raise ValueError("target reliability must be in (0, 1)")
    if mission_hours <= 0:
        raise ValueError("mission must have positive duration")
    for spares in range(max_spares + 1):
        config = SparingConfig(active=active, spares=spares, fail_rate=fail_rate)
        chain = _absorbing_chain(config)
        if DOWN not in chain.index:
            return spares
        p_down = chain.state_probability(DOWN, [mission_hours])[0]
        if 1.0 - p_down >= target_reliability:
            return spares
    raise ValueError(
        f"even {max_spares} spares miss the target; "
        "reduce the failure rate or the mission length"
    )
