"""Basic reliability mathematics.

Support layer for sizing the permanent-fault rates the paper feeds its
chains ("the rate of permanent faults ... can be established using for
example the models of [6], [1]"): exponential and Weibull lifetime models,
mission reliability, MTTF, and FIT-rate conversions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

HOURS_PER_YEAR = 8766.0  # 365.25 days


def fit_to_rate_per_hour(fit: float) -> float:
    """Convert a FIT value (failures per 1e9 device-hours) to a per-hour rate."""
    if fit < 0:
        raise ValueError(f"FIT must be nonnegative, got {fit}")
    return fit * 1e-9


def rate_per_hour_to_fit(rate: float) -> float:
    """Convert a per-hour failure rate to FIT."""
    if rate < 0:
        raise ValueError(f"rate must be nonnegative, got {rate}")
    return rate * 1e9


@dataclass(frozen=True)
class ExponentialLifetime:
    """Constant-rate (memoryless) lifetime model.

    The standard assumption for electronic components in their useful-life
    region, and the one under which a Markov chain with constant rates is
    exact.
    """

    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise ValueError("rate must be nonnegative")

    def reliability(self, t_hours: float) -> float:
        """``R(t) = exp(-λ t)``."""
        return math.exp(-self.rate_per_hour * t_hours)

    def unreliability(self, t_hours: float) -> float:
        """``F(t) = 1 - R(t)``, computed stably for small ``λ t``."""
        return -math.expm1(-self.rate_per_hour * t_hours)

    def mttf_hours(self) -> float:
        """Mean time to failure, ``1/λ``."""
        if self.rate_per_hour == 0:
            return math.inf
        return 1.0 / self.rate_per_hour


@dataclass(frozen=True)
class WeibullLifetime:
    """Weibull lifetime, for wear-out (k > 1) or infant-mortality (k < 1).

    ``R(t) = exp(-(t / scale)^shape)``.  Included for sizing studies that
    go beyond the constant-rate regime; the Markov chains themselves
    assume exponential behaviour.
    """

    scale_hours: float
    shape: float

    def __post_init__(self) -> None:
        if self.scale_hours <= 0:
            raise ValueError("scale must be positive")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    def reliability(self, t_hours: float) -> float:
        if t_hours < 0:
            raise ValueError("time must be nonnegative")
        return math.exp(-((t_hours / self.scale_hours) ** self.shape))

    def unreliability(self, t_hours: float) -> float:
        if t_hours < 0:
            raise ValueError("time must be nonnegative")
        return -math.expm1(-((t_hours / self.scale_hours) ** self.shape))

    def hazard_rate(self, t_hours: float) -> float:
        """Instantaneous failure rate ``h(t)``."""
        if t_hours < 0:
            raise ValueError("time must be nonnegative")
        k, s = self.shape, self.scale_hours
        if t_hours == 0.0:
            if k < 1:
                return math.inf
            if k == 1:
                return 1.0 / s
            return 0.0
        return (k / s) * (t_hours / s) ** (k - 1)

    def mttf_hours(self) -> float:
        """``MTTF = scale * Γ(1 + 1/shape)``."""
        return self.scale_hours * math.gamma(1.0 + 1.0 / self.shape)


def mission_reliability(rate_per_hour: float, mission_hours: float) -> float:
    """Probability of surviving a mission at a constant failure rate."""
    return ExponentialLifetime(rate_per_hour).reliability(mission_hours)


def rate_for_target_reliability(target: float, mission_hours: float) -> float:
    """Largest constant rate meeting a reliability target over a mission."""
    if not 0 < target < 1:
        raise ValueError("target reliability must be in (0, 1)")
    if mission_hours <= 0:
        raise ValueError("mission duration must be positive")
    return -math.log(target) / mission_hours
