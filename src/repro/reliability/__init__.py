"""Reliability-engineering substrate (paper refs [1], [6]).

Public surface:

* :mod:`~repro.reliability.metrics` — lifetime models, MTTF, FIT
  conversion.
* :class:`~repro.reliability.milhdbk.MemoryChip` — MIL-HDBK-217-style
  parts-stress permanent-fault rate estimation.
* :mod:`~repro.reliability.structures` — series/parallel/k-of-n/standby
  combinators and the whole-memory extension.
"""

from .metrics import (
    ExponentialLifetime,
    WeibullLifetime,
    fit_to_rate_per_hour,
    mission_reliability,
    rate_for_target_reliability,
    rate_per_hour_to_fit,
)
from .milhdbk import (
    ENVIRONMENT_FACTORS,
    QUALITY_FACTORS,
    MemoryChip,
    die_complexity_factor,
    learning_factor,
    package_factor,
    temperature_factor,
)
from .sparing import (
    SparingConfig,
    spares_for_mission,
    sparing_availability,
    sparing_mttf_hours,
)
from .structures import (
    cold_standby,
    k_of_n,
    parallel,
    series,
    whole_memory_data_integrity,
)

__all__ = [
    "ExponentialLifetime",
    "WeibullLifetime",
    "fit_to_rate_per_hour",
    "rate_per_hour_to_fit",
    "mission_reliability",
    "rate_for_target_reliability",
    "MemoryChip",
    "ENVIRONMENT_FACTORS",
    "QUALITY_FACTORS",
    "die_complexity_factor",
    "package_factor",
    "temperature_factor",
    "learning_factor",
    "series",
    "parallel",
    "k_of_n",
    "cold_standby",
    "whole_memory_data_integrity",
    "SparingConfig",
    "sparing_mttf_hours",
    "sparing_availability",
    "spares_for_mission",
]
