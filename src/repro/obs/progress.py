"""Campaign progress: per-chunk heartbeats with a rolling-throughput ETA.

A long campaign should never be a black box between launch and summary.
:class:`ProgressTracker` turns chunk completions into
:class:`ProgressEvent` heartbeats carrying done/total counts, a rolling
throughput estimate, and the derived ETA.  The estimate is computed over
a sliding window of recent completions (not the full history), so it
adapts when throughput changes mid-run — e.g. after the supervisor
degrades a pool to serial execution.

The tracker is deliberately clock-injectable (``clock=``) so tests can
drive it deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat: completion state plus throughput/ETA estimates."""

    done: int
    total: int
    elapsed_seconds: float
    rate_per_second: Optional[float]  # None until two samples exist
    eta_seconds: Optional[float]  # None until a rate exists
    unit: str = "trials"

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "done": self.done,
            "total": self.total,
            "fraction": self.fraction,
            "elapsed_seconds": self.elapsed_seconds,
            "rate_per_second": self.rate_per_second,
            "eta_seconds": self.eta_seconds,
            "unit": self.unit,
        }


class ProgressTracker:
    """Accumulates completed work and estimates throughput over a window.

    ``advance(n)`` records ``n`` more completed units and returns the
    heartbeat event for that instant.  The rate is the slope across the
    oldest and newest of the last ``window`` samples; the ETA divides
    the remaining work by that rate.
    """

    def __init__(
        self,
        total: int,
        unit: str = "trials",
        window: int = 20,
        clock: Callable[[], float] = time.monotonic,
    ):
        if total < 0:
            raise ValueError("total must be nonnegative")
        if window < 2:
            raise ValueError("window must be at least 2 samples")
        self.total = total
        self.unit = unit
        self._clock = clock
        self._t0: Optional[float] = None
        self.done = 0
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=window)

    def start(self) -> None:
        """Mark the start instant (idempotent; ``advance`` calls it too)."""
        if self._t0 is None:
            self._t0 = self._clock()
            self._samples.append((self._t0, 0))

    def advance(self, n: int = 1) -> ProgressEvent:
        """Record ``n`` completed units; return the heartbeat event."""
        if n < 0:
            raise ValueError("cannot advance by a negative amount")
        self.start()
        now = self._clock()
        self.done += n
        self._samples.append((now, self.done))
        return self._event(now)

    def snapshot(self) -> ProgressEvent:
        """The current heartbeat without recording new work."""
        self.start()
        return self._event(self._clock())

    def _event(self, now: float) -> ProgressEvent:
        if self._t0 is None:  # every caller goes through start() first
            raise RuntimeError("progress tracker was never started")
        elapsed = now - self._t0
        rate: Optional[float] = None
        eta: Optional[float] = None
        if len(self._samples) >= 2:
            (t_old, done_old) = self._samples[0]
            (t_new, done_new) = self._samples[-1]
            span = t_new - t_old
            gained = done_new - done_old
            if span > 0 and gained > 0:
                rate = gained / span
                remaining = max(0, self.total - self.done)
                eta = remaining / rate
        return ProgressEvent(
            done=self.done,
            total=self.total,
            elapsed_seconds=elapsed,
            rate_per_second=rate,
            eta_seconds=eta,
            unit=self.unit,
        )


def format_progress(event: ProgressEvent) -> str:
    """One-line human rendering, e.g. for ``repro campaign --progress``."""
    head = f"{event.done}/{event.total} {event.unit}"
    if event.total > 0:
        head += f" ({100.0 * event.fraction:5.1f}%)"
    if event.rate_per_second is not None:
        head += f" | {event.rate_per_second:,.0f}/s"
    if event.eta_seconds is not None:
        head += f" | eta {_format_seconds(event.eta_seconds)}"
    return head


def _format_seconds(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
