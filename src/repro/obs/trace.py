"""Nestable span tracing with an in-process collector and JSONL export.

The solver and campaign layers are instrumented with *spans* — named,
attributed, timed regions — so a run can explain not just *what* it
computed but *why* (how many uniformization terms, what tail bound at
exit, whether the large-``L·t`` fallback ran, how many Padé evaluations
the expm cache saved).  Tracing is off by default: ``span()`` and
``event()`` cost one small object and two ``perf_counter`` calls when no
collector is installed, and nothing is retained.

Usage::

    from repro.obs import trace

    collector = trace.TraceCollector()
    with trace.use_collector(collector):
        with trace.span("solve", method="uniformization") as sp:
            ...
            sp.set_attrs(terms_used=42, tail_bound=1e-18)
        trace.event("chunk_heartbeat", chunk=3, eta_seconds=1.5)
    collector.export_jsonl("run_trace.jsonl")

Spans nest through a thread-local stack: a span opened while another is
active records that span as its parent, so the exported JSONL reproduces
the call tree (``span_id`` / ``parent_id`` / ``depth``).  Records are
plain dicts; the JSONL schema is one object per line with a ``kind``
discriminator (``"span"`` | ``"event"`` | ``"metric"``).
"""

from __future__ import annotations

import contextlib
import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from ..ioutil import atomic_write

_ids = itertools.count(1)
_local = threading.local()

#: JSONL schema version stamped on every exported line.
TRACE_SCHEMA = 1


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """One named, attributed, timed region (created by :func:`span`)."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "t_start",
        "duration_s",
    )

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        parent: Optional["Span"] = None,
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.t_start = time.time()
        self.duration_s: Optional[float] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "attrs": _jsonable(self.attrs),
        }


def _jsonable(attrs: Mapping[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-serializable builtins."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [_jsonable({"v": v})["v"] for v in value]
        elif isinstance(value, Mapping):
            out[key] = _jsonable(value)
        elif hasattr(value, "item"):  # numpy scalars
            out[key] = value.item()
        else:
            out[key] = repr(value)
    return out


class TraceCollector:
    """Accumulates finished span/event records; exports them as JSONL."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []

    def add(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def records(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Snapshot of collected records, optionally filtered by kind."""
        with self._lock:
            records = list(self._records)
        if kind is None:
            return records
        return [r for r in records if r.get("kind") == kind]

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Collected span records, optionally filtered by span name."""
        spans = self.records("span")
        if name is None:
            return spans
        return [s for s in spans if s.get("name") == name]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Collected event records, optionally filtered by event name."""
        events = self.records("event")
        if name is None:
            return events
        return [e for e in events if e.get("name") == name]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def export_jsonl(
        self,
        path: Union[str, Path],
        metrics: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> Path:
        """Write every record (one JSON object per line) to ``path``.

        ``metrics`` (optional) is a registry snapshot
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`); each metric
        is appended as a ``{"kind": "metric", ...}`` line so one file
        carries the complete observability record of a run.

        The export is atomic (temp + fsync + rename), so a crash during
        export cannot leave a truncated trace file.
        """
        lines = [json.dumps(record) + "\n" for record in self.records()]
        if metrics:
            for name, data in sorted(metrics.items()):
                line = {"kind": "metric", "schema": TRACE_SCHEMA, "name": name}
                line.update(_jsonable(data))
                lines.append(json.dumps(line) + "\n")
        return atomic_write(path, "".join(lines))


#: Process-wide collector; ``None`` means tracing is disabled.
_collector: Optional[TraceCollector] = None


def install_collector(collector: Optional[TraceCollector]) -> None:
    """Install (or, with ``None``, remove) the process-wide collector."""
    global _collector
    _collector = collector


def current_collector() -> Optional[TraceCollector]:
    return _collector


@contextlib.contextmanager
def use_collector(collector: TraceCollector) -> Iterator[TraceCollector]:
    """Temporarily install ``collector`` (restores the previous one)."""
    previous = _collector
    install_collector(collector)
    try:
        yield collector
    finally:
        install_collector(previous)


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Open a nestable span; records to the collector on exit (if any).

    The yielded :class:`Span` accepts :meth:`Span.set_attr` /
    :meth:`Span.set_attrs` from inside the region — this is how the
    solvers report truncation decisions as they make them.
    """
    stack = _stack()
    parent = stack[-1] if stack else None
    sp = Span(name, dict(attrs), parent)
    stack.append(sp)
    t0 = time.perf_counter()
    try:
        yield sp
    finally:
        sp.duration_s = time.perf_counter() - t0
        if stack and stack[-1] is sp:
            stack.pop()
        collector = _collector
        if collector is not None:
            collector.add(sp.to_record())


def event(name: str, **attrs: Any) -> None:
    """Record one instantaneous event (no-op when tracing is disabled)."""
    collector = _collector
    if collector is None:
        return
    stack = _stack()
    parent = stack[-1] if stack else None
    collector.add(
        {
            "kind": "event",
            "schema": TRACE_SCHEMA,
            "name": name,
            "t": time.time(),
            "parent_id": parent.span_id if parent is not None else None,
            "attrs": _jsonable(attrs),
        }
    )


def current_span() -> Optional[Span]:
    """The innermost live span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None
