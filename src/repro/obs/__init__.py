"""repro.obs — zero-dependency observability (tracing, metrics, progress).

The solver/simulator/runtime layers are instrumented with three
complementary primitives, all in-process and dependency-free:

* :mod:`repro.obs.trace` — nestable spans (``with trace.span(...)``) and
  instantaneous events, recorded to an installable
  :class:`~repro.obs.trace.TraceCollector` with JSONL export
  (``repro campaign --trace PATH``).  The CTMC solvers attach their
  truncation decisions (terms used, ``L·t``, tail bound at exit,
  fallback taken, expm cache hits) as span attributes, so differential
  tests can assert on *why* two solvers agree.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with fixed log-spaced buckets (chunk latency).  It absorbs
  the quantitative telemetry of :class:`repro.perf.PerfCounters`, which
  stays as the thin picklable carrier worker processes return.
* :mod:`repro.obs.progress` — per-chunk heartbeats with a
  rolling-throughput ETA, emitted through the chunk supervisor, rendered
  by ``repro campaign --progress``, and appended to run manifests.

Everything here degrades to near-zero cost when not enabled: no
collector installed means spans/events retain nothing, and the default
metrics registry is just a dict of lightweight objects.
"""

from __future__ import annotations

from . import metrics, trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_spaced_buckets,
    render_prometheus,
    set_registry,
)
from .progress import ProgressEvent, ProgressTracker, format_progress
from .trace import (
    Span,
    TraceCollector,
    current_collector,
    current_span,
    event,
    install_collector,
    span,
    use_collector,
)

__all__ = [
    "trace",
    "metrics",
    "Span",
    "TraceCollector",
    "current_collector",
    "current_span",
    "event",
    "install_collector",
    "span",
    "use_collector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "log_spaced_buckets",
    "render_prometheus",
    "get_registry",
    "set_registry",
    "ProgressEvent",
    "ProgressTracker",
    "format_progress",
]
