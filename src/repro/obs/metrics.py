"""Zero-dependency metrics: counters, gauges, log-bucketed histograms.

This registry absorbs the quantitative run telemetry that previously
lived only in the ad-hoc :class:`repro.perf.PerfCounters` fields and
adds the two shapes a serving stack needs that plain additive counters
cannot express: *gauges* (last-value, e.g. true wall clock) and
*histograms* (distributions, e.g. per-chunk latency).  The registry is
in-process and thread-safe; snapshots are plain dicts suitable for run
manifests and the JSONL trace export.

:class:`repro.perf.PerfCounters` remains the picklable merge-friendly
carrier that worker processes return — it publishes into a registry via
:meth:`~repro.perf.PerfCounters.publish` rather than being replaced, so
its worker merge/pickle semantics are untouched.

Histogram buckets are *fixed log-spaced boundaries* chosen at creation
(default: 100 µs to 1000 s, four buckets per decade), so observations
from different chunks, cells, or runs land in comparable buckets and
merged snapshots stay meaningful.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence


def log_spaced_buckets(
    lo: float, hi: float, per_decade: int = 4
) -> List[float]:
    """Fixed log-spaced bucket upper bounds covering ``[lo, hi]``.

    Returns ``per_decade`` boundaries per decade, inclusive of both
    endpoints' decades; observations above the last bound land in the
    implicit overflow bucket.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for log-spaced buckets")
    lo_exp = math.floor(math.log10(lo) * per_decade)
    hi_exp = math.ceil(math.log10(hi) * per_decade)
    return [10.0 ** (e / per_decade) for e in range(int(lo_exp), int(hi_exp) + 1)]


#: Default latency buckets: 100 µs .. 1000 s, 4 buckets per decade.
DEFAULT_LATENCY_BUCKETS = log_spaced_buckets(1e-4, 1e3)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-value metric (set-to, not accumulate)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-boundary histogram with cumulative summary statistics.

    ``bounds`` are upper bucket boundaries (ascending); an observation
    ``v`` lands in the first bucket with ``v <= bound``, or the overflow
    bucket past the last bound.  Tracks count/sum/min/max alongside the
    bucket counts so snapshots carry both the distribution shape and the
    exact mean.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        chosen = DEFAULT_LATENCY_BUCKETS if bounds is None else list(bounds)
        if sorted(chosen) != chosen:
            raise ValueError("histogram bounds must be ascending")
        self.bounds = list(chosen)
        self._counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self._counts),
        }


class MetricsRegistry:
    """Name-indexed counters/gauges/histograms with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, *args)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        if bounds is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bounds)

    def get(self, name: str):
        """The registered metric named ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict snapshot of every metric (JSON-serializable)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot() for name, metric in sorted(metrics.items())}

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


def _prometheus_name(name: str) -> str:
    """Map a dotted metric name to a Prometheus-legal one.

    ``repro.service.cache_hits`` -> ``repro_service_cache_hits``; any
    other character outside ``[a-zA-Z0-9_:]`` also becomes ``_``.
    """
    out = []
    for ch in name:
        if ch.isalnum() or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    if out and out[0].isdigit():
        out.insert(0, "_")
    return "".join(out)


def _prometheus_number(value: Optional[float]) -> str:
    if value is None:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render a registry in the Prometheus text exposition format (0.0.4).

    Counters and gauges become single samples; histograms become the
    conventional cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Names are sorted, so the scrape is deterministic.
    """
    lines: List[str] = []
    for name, snap in registry.snapshot().items():
        pname = _prometheus_name(name)
        kind = snap["type"]
        if kind == "counter":
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prometheus_number(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prometheus_number(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in zip(
                snap["bounds"], snap["bucket_counts"]
            ):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{_prometheus_number(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += snap["bucket_counts"][-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{pname}_sum {_prometheus_number(snap['sum'])}")
            lines.append(f"{pname}_count {snap['count']}")
    return "\n".join(lines) + "\n" if lines else ""


#: Process-wide default registry (solver/runtime instrumentation target).
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _registry
    previous = _registry
    _registry = registry
    return previous
