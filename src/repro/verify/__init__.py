"""Deterministic fuzzing & differential-oracle verification subsystem.

The paper's central correctness claim — RS(n, k) corrects any mix with
``2·re + er <= n − k`` — and every BER figure resting on it are exactly
the places where implementations quietly diverge at the capability
boundary.  This package turns the repo's redundancy (scalar vs batch
codecs, Berlekamp-Massey vs Euclid, uniformization vs expm vs closed
forms vs Monte-Carlo) into a standing correctness gate:

* :mod:`~repro.verify.generators` — seeded, deterministic case
  generators: random codewords with error/erasure mixes stratified
  below / at / beyond capacity, random well-formed CTMC chains
  (including zero-rate rows), and scrub/mission parameter sets.
* :mod:`~repro.verify.oracles` — independent reference implementations
  that share *no code* with the production paths: a quadratic-time
  table-free GF multiplier, a textbook syndrome-table decoder, an
  exhaustive minimum-distance decoder for tiny codes, and a truncated
  Taylor-series matrix exponential.
* :mod:`~repro.verify.diff` — the pluggable differential-target
  registry: each target generates cases, checks a pair (or panel) of
  implementations against each other, and reports structured
  mismatches.
* :mod:`~repro.verify.harness` — the time/trial-budgeted fuzz loop
  with greedy shrinking of failing inputs to minimal repros, replayable
  JSON failure artifacts, and obs.metrics/trace integration.

CLI surface: ``repro verify fuzz --target rs-decode --budget 60``,
``repro verify replay ARTIFACT.json``, ``repro verify list-targets``.
Shrunk regression artifacts live in ``tests/corpus/`` and are replayed
by the tier-1 suite.
"""

from .diff import Mismatch, Target, all_targets, get_target, register_target
from .generators import (
    CAPACITY_STRATA,
    apply_corruption,
    build_codec,
    build_ctmc_from_case,
    case_rng,
    gen_codec_case,
    gen_ctmc_case,
    gen_memory_case,
    gen_mc_case,
)
from .harness import (
    ARTIFACT_SCHEMA,
    FuzzReport,
    ReplayResult,
    fuzz_all_targets,
    fuzz_target,
    load_artifact,
    make_corpus_case,
    replay_artifact,
    shrink_case,
    write_artifact,
)
from .oracles import (
    exhaustive_decode,
    expm_taylor,
    gf_mul_reference,
    gf_pow_reference,
    syndrome_table_decode,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "CAPACITY_STRATA",
    "FuzzReport",
    "Mismatch",
    "ReplayResult",
    "Target",
    "all_targets",
    "apply_corruption",
    "build_codec",
    "build_ctmc_from_case",
    "case_rng",
    "exhaustive_decode",
    "expm_taylor",
    "fuzz_all_targets",
    "fuzz_target",
    "gen_codec_case",
    "gen_ctmc_case",
    "gen_mc_case",
    "gen_memory_case",
    "get_target",
    "make_corpus_case",
    "gf_mul_reference",
    "gf_pow_reference",
    "load_artifact",
    "register_target",
    "replay_artifact",
    "shrink_case",
    "syndrome_table_decode",
    "write_artifact",
]
