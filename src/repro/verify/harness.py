"""Time/trial-budgeted fuzz loop with greedy shrinking and replay artifacts.

The fuzz loop is deterministic: trial ``i`` of a run seeded ``s`` always
draws from :func:`~repro.verify.generators.case_rng` ``(s, i)``, so the
same seed produces the same trial *sequence* regardless of wall-clock
budget — a time budget only decides how far along the sequence the run
gets.  When a target's check reports a :class:`~repro.verify.diff.Mismatch`,
the harness greedily shrinks the case (first shrink candidate that still
fails becomes the new case, repeat) and writes a JSON *failure artifact*
that :func:`replay_artifact` — and ``repro verify replay`` — reproduces
exactly.

Artifacts come in two kinds:

* ``"verify-failure"`` — a fuzz run's shrunk repro; replay re-runs the
  check and reports whether the mismatch still reproduces.
* ``"verify-case"`` — a committed regression case (``tests/corpus/``);
  replay expects the check to *pass* (the bug it once exposed, or the
  edge it pins down, must stay fixed).

Fuzz activity is observable: each run opens a ``verify.fuzz`` span
(trials, failures, elapsed) and bumps ``repro.verify.*`` counters in the
process metrics registry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..ioutil import atomic_write
from ..obs import metrics, trace
from .diff import Mismatch, Target, all_targets, get_target
from .generators import case_rng

#: Artifact JSON schema version (bump on breaking layout changes).
ARTIFACT_SCHEMA = 1

#: Cap on the number of candidate checks one shrink pass may spend.
MAX_SHRINK_CHECKS = 400


@dataclass
class FuzzReport:
    """Outcome of one fuzz run against one target."""

    target: str
    seed: int
    trials: int
    elapsed_seconds: float
    induced: bool = False
    mismatch: Optional[Mismatch] = None
    failing_trial: Optional[int] = None
    case: Optional[Dict[str, Any]] = None
    shrunk_case: Optional[Dict[str, Any]] = None
    shrink_steps: int = 0
    shrink_checks: int = 0
    artifact_path: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.mismatch is not None

    def summary(self) -> str:
        if not self.failed:
            return (
                f"{self.target}: OK — {self.trials} trials in "
                f"{self.elapsed_seconds:.1f}s (seed {self.seed})"
            )
        where = f"trial {self.failing_trial} (seed {self.seed})"
        return (
            f"{self.target}: FAIL at {where} — {self.mismatch.description} "
            f"[shrunk in {self.shrink_steps} step(s)]"
        )


@dataclass
class ReplayResult:
    """Outcome of replaying one artifact."""

    path: str
    target: str
    kind: str
    mismatch: Optional[Mismatch]
    reproduced: bool
    expected_failure: bool

    @property
    def as_recorded(self) -> bool:
        """True when the artifact behaves exactly as committed."""
        return self.reproduced == self.expected_failure

    def summary(self) -> str:
        if self.expected_failure:
            verdict = (
                "mismatch reproduced"
                if self.reproduced
                else "mismatch NO LONGER reproduces (fixed, or replay drift)"
            )
        else:
            verdict = (
                "regression case passes"
                if not self.reproduced
                else f"REGRESSION: {self.mismatch.description}"
            )
        return f"{self.target} [{self.kind}] {Path(self.path).name}: {verdict}"


def _checker(target: Target, induced: bool):
    return target.induced_check if induced else target.check


def shrink_case(
    target: Target,
    case: Dict[str, Any],
    induced: bool = False,
    max_checks: int = MAX_SHRINK_CHECKS,
) -> tuple[Dict[str, Any], Mismatch, int, int]:
    """Greedily shrink a failing case to a (locally) minimal repro.

    Repeatedly walks ``target.shrink(case)`` and descends into the first
    candidate that still fails, until no candidate fails or the check
    budget runs out.  Returns ``(shrunk_case, mismatch, steps, checks)``
    where ``mismatch`` is the failure of the *shrunk* case — that is
    what the artifact records and replay verifies.
    """
    check = _checker(target, induced)
    mismatch = check(case)
    if mismatch is None:
        raise ValueError("shrink_case requires a failing case")
    steps = 0
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in target.shrink(case):
            if checks >= max_checks:
                break
            checks += 1
            try:
                candidate_mismatch = check(candidate)
            except Exception:
                # A shrink candidate may be structurally invalid for the
                # checker (e.g. dropped below a generator invariant);
                # skip it rather than abort the minimization.
                continue
            if candidate_mismatch is not None:
                case = candidate
                mismatch = candidate_mismatch
                steps += 1
                progress = True
                break
    return case, mismatch, steps, checks


def fuzz_target(
    target: Union[Target, str],
    seed: int,
    budget_seconds: Optional[float] = None,
    max_trials: Optional[int] = None,
    artifact_dir: Optional[Union[str, Path]] = None,
    induce_bug: bool = False,
) -> FuzzReport:
    """Fuzz one target until failure, trial budget, or time budget.

    At least one of ``budget_seconds`` / ``max_trials`` must be given.
    ``induce_bug=True`` swaps in the target's deliberately buggy
    self-test check — the supported way to watch the whole
    detect→shrink→artifact→replay pipeline fire without a real bug.
    """
    if isinstance(target, str):
        target = get_target(target)
    if budget_seconds is None and max_trials is None:
        raise ValueError("need a time budget, a trial budget, or both")
    registry = metrics.get_registry()
    t0 = time.perf_counter()
    trials = 0
    with trace.span(
        "verify.fuzz", target=target.name, seed=int(seed), induced=induce_bug
    ) as sp:
        check = _checker(target, induce_bug)
        while True:
            if max_trials is not None and trials >= max_trials:
                break
            if (
                budget_seconds is not None
                and time.perf_counter() - t0 >= budget_seconds
            ):
                break
            rng = case_rng(seed, trials)
            case = target.generate(rng)
            mismatch = check(case)
            trials += 1
            registry.counter("repro.verify.trials").inc()
            if mismatch is None:
                continue
            registry.counter("repro.verify.failures").inc()
            shrunk, shrunk_mismatch, steps, checks = shrink_case(
                target, case, induced=induce_bug
            )
            elapsed = time.perf_counter() - t0
            report = FuzzReport(
                target=target.name,
                seed=int(seed),
                trials=trials,
                elapsed_seconds=elapsed,
                induced=induce_bug,
                mismatch=shrunk_mismatch,
                failing_trial=trials - 1,
                case=case,
                shrunk_case=shrunk,
                shrink_steps=steps,
                shrink_checks=checks,
            )
            sp.set_attrs(trials=trials, failed=True, shrink_steps=steps)
            if artifact_dir is not None:
                report.artifact_path = str(
                    write_artifact(report, artifact_dir)
                )
            return report
        elapsed = time.perf_counter() - t0
        sp.set_attrs(trials=trials, failed=False)
    return FuzzReport(
        target=target.name,
        seed=int(seed),
        trials=trials,
        elapsed_seconds=elapsed,
        induced=induce_bug,
    )


def fuzz_all_targets(
    seed: int,
    budget_seconds: float,
    artifact_dir: Optional[Union[str, Path]] = None,
    induce_bug: bool = False,
) -> List[FuzzReport]:
    """Fuzz every registered target, splitting the time budget evenly.

    The per-target trial sequences are independent of the split (each
    target re-derives its stream from ``(seed, trial)``), so a longer
    budget strictly extends — never reshuffles — the work of a shorter
    one.
    """
    targets = all_targets()
    per_target = budget_seconds / max(1, len(targets))
    return [
        fuzz_target(
            t,
            seed,
            budget_seconds=per_target,
            artifact_dir=artifact_dir,
            induce_bug=induce_bug,
        )
        for t in targets
    ]


# --------------------------------------------------------------------------
# artifacts
# --------------------------------------------------------------------------


def artifact_from_report(report: FuzzReport) -> Dict[str, Any]:
    """The JSON payload of a failure artifact."""
    if not report.failed:
        raise ValueError("only failing fuzz reports produce artifacts")
    return {
        "schema": ARTIFACT_SCHEMA,
        "kind": "verify-failure",
        "target": report.target,
        "seed": report.seed,
        "trial": report.failing_trial,
        "induced": report.induced,
        "mismatch": report.mismatch.as_dict(),
        "case": report.case,
        "shrunk_case": report.shrunk_case,
        "shrink_steps": report.shrink_steps,
        "shrink_checks": report.shrink_checks,
    }


def write_artifact(
    report: FuzzReport, directory: Union[str, Path]
) -> Path:
    """Write a failure artifact; filename encodes target/seed/trial."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = (
        f"{report.target}-seed{report.seed}-trial{report.failing_trial}"
        f"{'-induced' if report.induced else ''}.json"
    )
    path = directory / name
    # Atomic: a crash mid-write must not leave a truncated artifact that
    # poisons later replays.
    atomic_write(
        path,
        json.dumps(artifact_from_report(report), indent=2, sort_keys=True)
        + "\n",
    )
    return path


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate an artifact file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    kind = payload.get("kind")
    if kind not in ("verify-failure", "verify-case"):
        raise ValueError(
            f"{path}: unknown artifact kind {kind!r} "
            "(expected 'verify-failure' or 'verify-case')"
        )
    if payload.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: artifact schema {payload.get('schema')!r} "
            f"not supported (this build reads schema {ARTIFACT_SCHEMA})"
        )
    for key in ("target", "case"):
        if key not in payload:
            raise ValueError(f"{path}: artifact missing {key!r}")
    return payload


def replay_artifact(
    path: Union[str, Path], use_shrunk: bool = True
) -> ReplayResult:
    """Re-run the check an artifact records and compare to expectation.

    ``verify-failure`` artifacts replay their shrunk case (or the
    original with ``use_shrunk=False``) and are expected to *fail*
    again; ``verify-case`` artifacts replay their case and are expected
    to *pass*.  :attr:`ReplayResult.as_recorded` is the single bit CI
    cares about.
    """
    payload = load_artifact(path)
    target = get_target(payload["target"])
    expected_failure = payload["kind"] == "verify-failure"
    case = payload["case"]
    if expected_failure and use_shrunk and payload.get("shrunk_case"):
        case = payload["shrunk_case"]
    check = _checker(target, bool(payload.get("induced", False)))
    with trace.span(
        "verify.replay", target=target.name, kind=payload["kind"]
    ) as sp:
        mismatch = check(case)
        sp.set_attrs(reproduced=mismatch is not None)
    metrics.get_registry().counter("repro.verify.replays").inc()
    return ReplayResult(
        path=str(path),
        target=target.name,
        kind=payload["kind"],
        mismatch=mismatch,
        reproduced=mismatch is not None,
        expected_failure=expected_failure,
    )


def make_corpus_case(
    target: Union[Target, str], case: Dict[str, Any], note: str
) -> Dict[str, Any]:
    """Build a committed regression ("verify-case") artifact payload.

    The case must currently *pass* its target's check — corpus entries
    pin fixed bugs and hard-won edge cases, they don't ship known
    failures.
    """
    if isinstance(target, str):
        target = get_target(target)
    mismatch = target.check(case)
    if mismatch is not None:
        raise ValueError(
            f"corpus case for {target.name!r} fails its check: "
            f"{mismatch.description}"
        )
    return {
        "schema": ARTIFACT_SCHEMA,
        "kind": "verify-case",
        "target": target.name,
        "note": note,
        "case": case,
    }
