"""Independent reference implementations ("oracles") for differential tests.

Everything here deliberately shares *no code path* with the production
implementations it checks:

* :func:`gf_mul_reference` — quadratic-time carry-less multiply +
  bitwise polynomial reduction.  No exp/log tables, so a table-building
  bug in :class:`~repro.gf.field.GF2m` cannot hide.
* :func:`syndrome_table_decode` — the textbook decoder: precompute the
  syndrome → minimal-weight-error-pattern table by enumerating every
  correctable *error-only* pattern.  Feasible only for tiny codes with
  ``t <= 2``; exact where it applies.
* :func:`exhaustive_decode` — minimum-distance errors-and-erasures
  decoding by scanning the full codebook of a tiny code.  This is the
  definition of bounded-distance decoding, so it adjudicates *both*
  success flags and corrected words at and beyond the capability bound.
* :func:`expm_taylor` — scaling-and-squaring truncated Taylor series
  for ``exp(Q t)``, pure numpy.  Independent of scipy's Padé kernel and
  of the uniformization series (different truncation structure,
  different error behaviour), so three-way CTMC comparisons have a
  third, structurally distinct vote.

Oracles favour obviousness over speed; the fuzz harness budgets time,
not trials, so slow-but-clearly-correct is the right trade.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gf.field import DEFAULT_PRIMITIVE_POLYNOMIALS
from ..rs.codec import RSCode

#: Largest codebook (``q^k`` rows) the exhaustive decoder will enumerate.
MAX_CODEBOOK = 1 << 16

#: Largest syndrome table the textbook decoder will build.
MAX_SYNDROME_TABLE = 1 << 17


# --------------------------------------------------------------------------
# GF arithmetic
# --------------------------------------------------------------------------


def gf_mul_reference(m: int, a: int, b: int, prim_poly: Optional[int] = None) -> int:
    """Table-free GF(2^m) multiply: carry-less product, then reduction.

    Quadratic in ``m`` and entirely independent of the exp/log tables
    the production field builds — the point is that the two can only
    agree if both are right.
    """
    if prim_poly is None:
        prim_poly = DEFAULT_PRIMITIVE_POLYNOMIALS[m]
    if not (0 <= a < (1 << m) and 0 <= b < (1 << m)):
        raise ValueError(f"operands must be in [0, 2^{m})")
    # carry-less (polynomial) multiplication over GF(2)
    prod = 0
    for bit in range(b.bit_length()):
        if (b >> bit) & 1:
            prod ^= a << bit
    # reduce modulo the primitive polynomial, high bits first
    for bit in range(prod.bit_length() - 1, m - 1, -1):
        if (prod >> bit) & 1:
            prod ^= prim_poly << (bit - m)
    return prod


def gf_pow_reference(
    m: int, a: int, e: int, prim_poly: Optional[int] = None
) -> int:
    """``a^e`` (``e >= 0``) by square-and-multiply over the reference multiply."""
    if e < 0:
        raise ValueError("reference pow covers nonnegative exponents only")
    result = 1
    base = a
    while e:
        if e & 1:
            result = gf_mul_reference(m, result, base, prim_poly)
        base = gf_mul_reference(m, base, base, prim_poly)
        e >>= 1
    return result


# --------------------------------------------------------------------------
# exhaustive minimum-distance decoding (tiny codes)
# --------------------------------------------------------------------------


@lru_cache(maxsize=32)
def _codebook(n: int, k: int, m: int, fcr: int) -> np.ndarray:
    """All ``q^k`` codewords of a tiny RS(n, k) code as a ``(q^k, n)`` array."""
    order = 1 << m
    if order**k > MAX_CODEBOOK:
        raise ValueError(
            f"codebook of RS({n},{k}) over GF(2^{m}) has {order**k} words; "
            f"exhaustive oracle is limited to {MAX_CODEBOOK}"
        )
    code = RSCode(n, k, m=m, fcr=fcr)
    rows = [
        code.encode(list(data))
        for data in itertools.product(range(order), repeat=k)
    ]
    return np.asarray(rows, dtype=np.int64)


def exhaustive_decode(
    code: RSCode,
    received: Sequence[int],
    erasure_positions: Sequence[int] = (),
) -> Tuple[Optional[List[int]], int]:
    """Bounded-distance errors-and-erasures decoding by codebook scan.

    Returns ``(codeword, num_errors)`` where ``num_errors`` counts
    mismatches at *non-erased* positions, or ``(None, min_errors)`` when
    no codeword satisfies ``2·e + er <= n − k`` (detectable failure).

    Any codeword inside the bound is unique: two candidates ``c1, c2``
    with ``2·e_i + er <= n − k`` would differ in at most
    ``e1 + e2 + er <= n − k < d_min`` positions — impossible for an MDS
    code.  So when this oracle returns a word, *every* correct
    bounded-distance decoder must return exactly that word.
    """
    book = _codebook(code.n, code.k, code.m, code.fcr)
    received_arr = np.asarray(list(received), dtype=np.int64)
    if received_arr.shape != (code.n,):
        raise ValueError(f"expected {code.n} symbols")
    erased = np.zeros(code.n, dtype=bool)
    for p in erasure_positions:
        erased[p] = True
    keep = ~erased
    mismatches = (book[:, keep] != received_arr[keep]).sum(axis=1)
    best = int(mismatches.argmin())
    e = int(mismatches[best])
    rho = int(erased.sum())
    if 2 * e + rho <= code.n - code.k:
        return book[best].tolist(), e
    return None, e


# --------------------------------------------------------------------------
# textbook syndrome-table decoding (error-only, tiny codes)
# --------------------------------------------------------------------------


@lru_cache(maxsize=16)
def _syndrome_table(
    n: int, k: int, m: int, fcr: int
) -> Dict[Tuple[int, ...], Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Syndrome → (positions, magnitudes) of the minimal-weight error pattern.

    Enumerates every error pattern of weight ``0..t`` and records its
    syndrome.  Patterns are enumerated in increasing weight, so the first
    writer of a syndrome slot is automatically the minimal-weight coset
    leader (for weights within ``t`` the syndrome map is injective for
    an MDS code, so no collision can actually occur — asserted while
    building).
    """
    code = RSCode(n, k, m=m, fcr=fcr)
    order = 1 << m
    t = code.t
    size = sum(
        _comb(n, w) * (order - 1) ** w for w in range(t + 1)
    )
    if size > MAX_SYNDROME_TABLE:
        raise ValueError(
            f"syndrome table for RS({n},{k}) t={t} would hold {size} "
            f"patterns; textbook oracle is limited to {MAX_SYNDROME_TABLE}"
        )
    gf = code.gf
    table: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    for w in range(t + 1):
        for positions in itertools.combinations(range(n), w):
            for magnitudes in itertools.product(range(1, order), repeat=w):
                synd = tuple(
                    _pattern_syndrome(gf, positions, magnitudes, fcr + j)
                    for j in range(code.nsym)
                )
                prev = table.get(synd)
                if prev is not None and prev != (positions, magnitudes):
                    raise AssertionError(
                        f"syndrome collision within t={t} for RS({n},{k}): "
                        f"{prev} vs {(positions, magnitudes)}"
                    )
                table[synd] = (positions, magnitudes)
    return table


def _comb(n: int, w: int) -> int:
    out = 1
    for i in range(w):
        out = out * (n - i) // (i + 1)
    return out


def _pattern_syndrome(gf, positions, magnitudes, power: int) -> int:
    """``sum_j mag_j * alpha^(power * pos_j)`` — the syndrome of a pattern."""
    acc = 0
    for pos, mag in zip(positions, magnitudes):
        acc ^= gf.mul(mag, gf.pow(gf.alpha, power * pos))
    return acc


def syndrome_table_decode(
    code: RSCode, received: Sequence[int]
) -> Optional[List[int]]:
    """Textbook error-only decoding via the precomputed syndrome table.

    Returns the corrected codeword, or ``None`` when the syndrome is not
    in the table (more than ``t`` errors — detectable failure).  Only
    valid for codes whose table fits :data:`MAX_SYNDROME_TABLE`.
    """
    from ..rs.syndromes import compute_syndromes

    table = _syndrome_table(code.n, code.k, code.m, code.fcr)
    synd = tuple(
        compute_syndromes(code.gf, list(received), code.nsym, code.fcr)
    )
    entry = table.get(synd)
    if entry is None:
        return None
    positions, magnitudes = entry
    corrected = list(received)
    for pos, mag in zip(positions, magnitudes):
        corrected[pos] ^= mag
    return corrected


# --------------------------------------------------------------------------
# truncated-series matrix exponential
# --------------------------------------------------------------------------


def expm_taylor(
    q: np.ndarray, t: float, tol: float = 1e-14, max_terms: int = 200
) -> np.ndarray:
    """``exp(Q t)`` by scaling-and-squaring over a truncated Taylor series.

    Pure numpy — independent of scipy's Padé approximant and of the
    uniformization series.  ``Q t`` is scaled down by ``2^s`` until its
    max-row-sum norm is below 0.5, the series is summed to ``tol``, and
    the result squared ``s`` times.  Handles the all-zero generator (a
    fully frozen chain) trivially: the answer is the identity.
    """
    a = np.asarray(q, dtype=float) * float(t)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"generator must be square, got shape {a.shape}")
    norm = float(np.abs(a).sum(axis=1).max(initial=0.0))
    s = 0
    while norm > 0.5:
        a = a / 2.0
        norm /= 2.0
        s += 1
    n = a.shape[0]
    out = np.eye(n)
    term = np.eye(n)
    for j in range(1, max_terms + 1):
        term = term @ a / j
        out = out + term
        if float(np.abs(term).max(initial=0.0)) < tol:
            break
    else:
        raise RuntimeError("expm_taylor failed to converge")
    for _ in range(s):
        out = out @ out
    return out


def transient_taylor_oracle(chain, times: Sequence[float]) -> np.ndarray:
    """Reference transient solution ``p0 · exp(Q t)`` via :func:`expm_taylor`."""
    q = chain.generator(dense=True)
    return np.array(
        [chain.p0 @ expm_taylor(q, float(t)) for t in np.atleast_1d(times)]
    )
