"""Seeded, deterministic case generators for the verification subsystem.

Every generator takes a :class:`numpy.random.Generator` and produces a
*plain JSON-serializable dict* — a "case".  Cases are the unit of
fuzzing: the harness derives one rng per ``(seed, trial)`` pair via
:func:`case_rng`, so the trial sequence of a fuzz run is a pure function
of its seed, and any case can be embedded verbatim in a failure artifact
and replayed later.

Codec cases stratify the error/erasure mix against the paper's
capability bound ``2·re + er <= n − k``:

* ``"clean"`` — no corruption at all (fast-path coverage);
* ``"below"`` — strictly inside capability;
* ``"at"`` — exactly on the bound, the regime where implementations
  historically diverge.  Note the odd-``n−k`` subtlety: with an odd
  erasure budget a pure-error pattern can spend at most ``n−k−1`` of
  it (``2·re`` is even), so every *exactly-at* pattern for odd ``n−k``
  necessarily contains at least one erasure — the generator guarantees
  this rather than silently rounding the budget;
* ``"beyond"`` — one to three units past the bound, including
  over-erased words (``er > n − k``) that must be rejected before the
  syndrome stage;
* ``"erasure-only"`` — ``re = 0`` with up to the full ``n − k``
  erasures (exercises the erasure-locator path alone).

CTMC cases are random well-formed chains: sparse nonnegative rates,
deliberately including zero-rate (absorbing) rows and occasionally a
fully frozen chain — the ``L = 0`` uniformization edge case.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..markov.chain import CTMC
from ..rs.codec import RSCode

#: Domain-separation prefix for all verify rng streams (so a verify seed
#: can never collide with a Monte-Carlo campaign seed stream).
VERIFY_STREAM = 0x5652_4659  # "VRFY"

#: Capacity strata recognised by :func:`gen_codec_case`.
CAPACITY_STRATA = ("clean", "below", "at", "beyond", "erasure-only")

#: Small codes the exhaustive-oracle targets can afford (``q^k`` bounded;
#: odd and even ``n − k`` both represented).
TINY_CONFIGS: Tuple[Tuple[int, int, int], ...] = (
    (7, 3, 3),   # nsym 4, t 2, codebook 512
    (7, 4, 3),   # nsym 3 (odd), t 1, codebook 4096
    (6, 3, 3),   # nsym 3 (odd), t 1, codebook 512
    (6, 2, 3),   # nsym 4, t 2, codebook 64
    (5, 3, 3),   # nsym 2, t 1, codebook 512
    (15, 3, 4),  # nsym 12, t 6, codebook 4096
)

#: Larger codes for solver-parity and batch/scalar differential targets,
#: including the paper's RS(18,16) / RS(36,16) and an odd-nsym config.
FULL_CONFIGS: Tuple[Tuple[int, int, int], ...] = (
    (7, 3, 3),
    (15, 9, 4),
    (18, 16, 8),
    (21, 16, 8),  # nsym 5 (odd)
    (31, 25, 5),
    (36, 16, 8),
)


def case_rng(seed: int, trial: int) -> np.random.Generator:
    """The deterministic rng of trial ``trial`` of a fuzz run seeded ``seed``.

    Entropy is the triple ``(VERIFY_STREAM, seed, trial)``, so the trial
    sequence is reproducible independently of how many trials ran before
    (replay does not need to fast-forward a shared stream).
    """
    return np.random.default_rng([VERIFY_STREAM, int(seed), int(trial)])


# --------------------------------------------------------------------------
# codec cases
# --------------------------------------------------------------------------


def _pick_mix(
    rng: np.random.Generator, n: int, nsym: int, stratum: str
) -> Tuple[int, int]:
    """Draw ``(re, er)`` for one stratum against budget ``nsym = n − k``.

    Always satisfies ``re + er <= n`` (positions are distinct) and, for
    ``"at"``, exactly ``2·re + er == nsym`` — for odd ``nsym`` this
    forces ``er >= 1`` because ``2·re`` can never reach an odd budget.
    """
    t = nsym // 2
    if stratum == "clean":
        return 0, 0
    if stratum == "below":
        if nsym <= 1:
            return 0, 0
        while True:
            re = int(rng.integers(0, t + 1))
            er = int(rng.integers(0, nsym - 2 * re + 1))
            if 2 * re + er < nsym:
                return re, er
    if stratum == "at":
        re = int(rng.integers(0, t + 1))
        return re, nsym - 2 * re
    if stratum == "erasure-only":
        return 0, int(rng.integers(1, nsym + 1))
    if stratum == "beyond":
        overshoot = int(rng.integers(1, 4))
        budget = nsym + overshoot
        # Mixed or erasure-heavy; cap positions at n.
        for _ in range(32):
            re = int(rng.integers(0, budget // 2 + 1))
            er = budget - 2 * re
            if er >= 0 and re + er <= n:
                return re, er
        # Fallback: pure errors one beyond capability.
        return min(t + 1, n), 0
    raise ValueError(f"unknown stratum {stratum!r}; choose from {CAPACITY_STRATA}")


def gen_codec_case(
    rng: np.random.Generator,
    configs: Sequence[Tuple[int, int, int]] = FULL_CONFIGS,
    stratum: Optional[str] = None,
) -> Dict[str, Any]:
    """One random codec case: data word + stratified error/erasure mix.

    ``erasure_magnitudes`` may contain zeros (a *benign* erasure — the
    position is flagged but happens to hold the correct symbol), which
    is a real read-out scenario the decoder must count but not correct.
    """
    n, k, m = configs[int(rng.integers(0, len(configs)))]
    if stratum is None:
        stratum = CAPACITY_STRATA[int(rng.integers(0, len(CAPACITY_STRATA)))]
    nsym = n - k
    order = 1 << m
    re, er = _pick_mix(rng, n, nsym, stratum)
    positions = rng.choice(n, size=re + er, replace=False).astype(int)
    error_positions = sorted(int(p) for p in positions[:re])
    erasure_positions = sorted(int(p) for p in positions[re:])
    error_magnitudes = [int(rng.integers(1, order)) for _ in error_positions]
    # ~1 in 5 erasures is benign (magnitude 0): flagged but uncorrupted.
    erasure_magnitudes = [
        0 if rng.random() < 0.2 else int(rng.integers(1, order))
        for _ in erasure_positions
    ]
    return {
        "kind": "codec",
        "n": n,
        "k": k,
        "m": m,
        "fcr": 1,
        "stratum": stratum,
        "data": [int(s) for s in rng.integers(0, order, size=k)],
        "error_positions": error_positions,
        "error_magnitudes": error_magnitudes,
        "erasure_positions": erasure_positions,
        "erasure_magnitudes": erasure_magnitudes,
    }


def build_codec(case: Dict[str, Any], key_solver: str = "bm") -> RSCode:
    """The scalar codec a codec case addresses."""
    return RSCode(
        case["n"], case["k"], m=case["m"], fcr=case.get("fcr", 1),
        key_solver=key_solver,
    )


def apply_corruption(
    code: RSCode, case: Dict[str, Any]
) -> Tuple[List[int], List[int]]:
    """Encode the case's data and apply its fault pattern.

    Returns ``(codeword, received)``; the erasure positions are those in
    the case (``case["erasure_positions"]``).
    """
    codeword = code.encode(case["data"])
    received = list(codeword)
    for p, mag in zip(case["error_positions"], case["error_magnitudes"]):
        received[p] ^= mag
    for p, mag in zip(case["erasure_positions"], case["erasure_magnitudes"]):
        received[p] ^= mag
    return codeword, received


def case_within_capability(case: Dict[str, Any]) -> bool:
    """Whether the case's *injected* pattern is inside ``2·re + er <= n−k``.

    Erasures with zero magnitude still occupy erasure budget (the decoder
    is told the position is unreliable), so they count toward ``er``.
    """
    re = len(case["error_positions"])
    er = len(case["erasure_positions"])
    return 2 * re + er <= case["n"] - case["k"]


# --------------------------------------------------------------------------
# CTMC cases
# --------------------------------------------------------------------------


def gen_ctmc_case(
    rng: np.random.Generator,
    max_states: int = 8,
    allow_frozen: bool = True,
) -> Dict[str, Any]:
    """One random well-formed CTMC with a transient evaluation grid.

    Structural edge cases are generated on purpose:

    * zero-rate rows (absorbing states) with probability ~0.4 per state;
    * occasionally a *fully frozen* chain (every row zero) — the
      ``L = 0`` uniformization short-circuit;
    * rates spanning five decades, so stiffness varies trial to trial;
    * both delta and spread initial distributions.
    """
    n = int(rng.integers(2, max_states + 1))
    frozen = allow_frozen and rng.random() < 0.05
    transitions: List[List[float]] = []
    if not frozen:
        density = float(rng.uniform(0.2, 0.9))
        absorbing = rng.random(n) < 0.4
        # keep at least one live row so the typical case is non-trivial
        absorbing[int(rng.integers(0, n))] = False
        for i in range(n):
            if absorbing[i]:
                continue  # zero-rate row
            for j in range(n):
                if i == j or rng.random() > density:
                    continue
                rate = float(10.0 ** rng.uniform(-3.0, 2.0))
                transitions.append([i, j, rate])
    if rng.random() < 0.5:
        initial: Any = int(rng.integers(0, n))
    else:
        w = rng.random(n) + 1e-3
        probs = w / w.sum()
        initial = [float(p) for p in probs]
    horizon = float(10.0 ** rng.uniform(-2.0, 1.0))
    n_times = int(rng.integers(1, 4))
    times = sorted(float(rng.uniform(0.0, horizon)) for _ in range(n_times))
    return {
        "kind": "ctmc",
        "num_states": n,
        "transitions": transitions,
        "initial": initial,
        "times": times,
    }


def build_ctmc_from_case(case: Dict[str, Any]) -> CTMC:
    """Instantiate the :class:`CTMC` a ctmc case describes."""
    n = case["num_states"]
    initial = case["initial"]
    if isinstance(initial, list):
        weights = np.asarray(initial, dtype=float)
        # renormalize exactly: JSON round-tripping may perturb the sum
        weights = weights / weights.sum()
        init: Any = {i: float(p) for i, p in enumerate(weights)}
    else:
        init = int(initial)
    return CTMC(
        states=range(n),
        transitions=[(int(i), int(j), float(r)) for i, j, r in case["transitions"]],
        initial=init,
    )


# --------------------------------------------------------------------------
# memory / scrub-mission parameter cases
# --------------------------------------------------------------------------

#: (n, k) pairs for memory-model cases (m fixed at 8 as in the paper).
MEMORY_CODES: Tuple[Tuple[int, int], ...] = ((18, 16), (12, 8), (36, 16))


def gen_memory_case(
    rng: np.random.Generator,
    pure_regime: bool = True,
    with_scrub: bool = False,
) -> Dict[str, Any]:
    """One memory-system parameter set (arrangement, code, rates, horizon).

    ``pure_regime=True`` keeps exactly one fault class active (the
    closed-form solvers' validity domain); otherwise both rates may be
    nonzero.  ``with_scrub`` draws a finite scrub period.
    """
    n, k = MEMORY_CODES[int(rng.integers(0, len(MEMORY_CODES)))]
    arrangement = "simplex" if rng.random() < 0.5 else "duplex"
    seu = float(10.0 ** rng.uniform(-6.0, -2.5))
    perm = float(10.0 ** rng.uniform(-6.0, -2.5))
    if pure_regime:
        if rng.random() < 0.5:
            perm = 0.0
        else:
            seu = 0.0
    scrub = None
    if with_scrub:
        scrub = float(10.0 ** rng.uniform(2.0, 4.5))  # 100 s .. ~9 h
    horizon = float(rng.uniform(1.0, 48.0))
    n_times = int(rng.integers(1, 4))
    times = sorted(float(rng.uniform(0.1, horizon)) for _ in range(n_times))
    return {
        "kind": "memory",
        "arrangement": arrangement,
        "n": n,
        "k": k,
        "m": 8,
        "seu_per_bit_day": seu,
        "erasure_per_symbol_day": perm,
        "scrub_period_seconds": scrub,
        "times_hours": times,
    }


def gen_mc_case(rng: np.random.Generator) -> Dict[str, Any]:
    """One analytic-vs-Monte-Carlo comparison case.

    Rates are drawn so the failure probability lands in the MC-visible
    window (roughly 0.02 .. 0.7 at the drawn horizon) — outside it a few
    hundred trials cannot falsify anything.
    """
    arrangement = "simplex" if rng.random() < 0.5 else "duplex"
    # per-day SEU rate in a band that makes RS(18,16) failures visible
    lam_day = float(10.0 ** rng.uniform(-3.3, -2.4))
    return {
        "kind": "mc",
        "arrangement": arrangement,
        "n": 18,
        "k": 16,
        "m": 8,
        "seu_per_bit_day": lam_day,
        "t_end_hours": 48.0,
        "trials": 400,
        "mc_seed": int(rng.integers(0, 2**31 - 1)),
    }


def gen_scenario_parity_case(rng: np.random.Generator) -> Dict[str, Any]:
    """One scenario-vs-analytic parity case.

    Draws a random *i.i.d.-reducible* fault-pattern spec (a transient
    mixture of ``1BIT`` and ``1SYM`` terms — the only shapes whose law
    the symbol-level chains can see) and, half the time, a two-segment
    quiet/flare rate schedule.  Scheduled cases pull the rate band down
    a notch so the extra flare fluence keeps the failure probability
    inside the MC-visible window.
    """
    arrangement = "simplex" if rng.random() < 0.5 else "duplex"
    if rng.random() < 0.5:
        pattern = "1BIT" if rng.random() < 0.5 else "1SYM"
    else:
        w = round(float(rng.uniform(0.2, 0.8)), 2)
        pattern = f"{w!r}*1BIT+{round(1.0 - w, 2)!r}*1SYM"
    schedule: Optional[str] = None
    if rng.random() < 0.5:
        quiet = round(float(rng.uniform(24.0, 42.0)), 1)
        flare = round(float(rng.uniform(2.0, 8.0)), 1)
        factor = round(float(rng.uniform(2.0, 8.0)), 1)
        schedule = f"{quiet!r}h@1.0,{flare!r}h@{factor!r}"
        lam_day = float(10.0 ** rng.uniform(-3.3, -2.7))
    else:
        lam_day = float(10.0 ** rng.uniform(-3.3, -2.4))
    return {
        "kind": "scenario-parity",
        "arrangement": arrangement,
        "n": 18,
        "k": 16,
        "m": 8,
        "seu_per_bit_day": lam_day,
        "pattern": pattern,
        "schedule": schedule,
        "t_end_hours": 48.0,
        "trials": 400,
        "mc_seed": int(rng.integers(0, 2**31 - 1)),
    }
