"""Pluggable differential-testing targets.

A :class:`Target` bundles everything the fuzz harness needs to drive one
pair (or panel) of independent implementations against each other:

* ``generate(rng)`` — draw one JSON-serializable case;
* ``check(case)`` — run every implementation on the case and return a
  :class:`Mismatch` (structured report) or ``None``;
* ``shrink(case)`` — propose strictly smaller candidate cases for the
  harness's greedy minimizer;
* ``induced_check(case)`` — a deliberately buggy check used by
  ``--induce-bug`` self-test runs, so the *harness machinery itself*
  (detection → shrinking → artifact → replay) is verifiable end to end
  without planting a real bug.

Registered targets (see :func:`all_targets`) span four layers:

========================  =======================  ==========================================
target                    layers                   compares
========================  =======================  ==========================================
``gf-mul``                gf                       table-driven scalar & batch multiply vs
                                                   quadratic carry-less reference
``rs-decode``             gf, rs                   scalar errors-and-erasures decoder vs
                                                   exhaustive minimum-distance oracle
                                                   (+ syndrome-table oracle where feasible)
``rs-solver-parity``      rs                       Berlekamp-Massey vs Euclid key solvers
``rs-batch-scalar``       gf, rs                   batch codec vs scalar codec, word for word
``rs-compiled-scalar``    gf, rs                   compiled (bit-sliced codegen) backend vs
                                                   scalar codec, word for word
``rs-compiled-batch``     gf, rs                   compiled backend vs numpy batch codec:
                                                   encode/syndrome arrays and decode
                                                   outcomes must be bit-identical
``markov-transient``      markov                   uniformization vs expm vs Taylor oracle
``memory-analytic``       memory, markov           closed-form fail probability vs CTMC
``memory-mc-ber``         memory, simulator        analytic model vs batched Monte-Carlo
                                                   within a 5-sigma Wilson interval
``journal-roundtrip``     runtime, simulator       random single-point corruption of a v2
                                                   checkpoint journal: doctor-repair or
                                                   direct resume must converge to the
                                                   bit-identical campaign estimate
``mc-streaming-vs-final`` stats, simulator         streaming BER snapshots vs the one-shot
                                                   final estimate, and the adaptive
                                                   early-stop prefix vs a literal
                                                   recomputation of the stopping rule
``scenario-analytic-parity`` memory, simulator     random i.i.d.-reducible fault-pattern
                                                   mixtures (optionally rate-scheduled) vs
                                                   the campaign's analytic bridge within a
                                                   5-sigma Wilson interval, plus the
                                                   miscorrection/unreadable split invariant
========================  =======================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from . import generators as gen
from . import oracles

Case = Dict[str, Any]


@dataclass(frozen=True)
class Mismatch:
    """A structured report of one differential disagreement."""

    description: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"description": self.description, "detail": _plain(self.detail)}


def _plain(value: Any) -> Any:
    """Coerce numpy scalars/arrays into JSON-serializable builtins."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


@dataclass(frozen=True)
class Target:
    """One registered differential target."""

    name: str
    layers: Tuple[str, ...]
    description: str
    generate: Callable[[np.random.Generator], Case]
    check: Callable[[Case], Optional[Mismatch]]
    shrink: Callable[[Case], Iterator[Case]]
    induced_check: Callable[[Case], Optional[Mismatch]]


_REGISTRY: Dict[str, Target] = {}


def register_target(target: Target) -> Target:
    """Register a target; duplicate names are programming errors."""
    if target.name in _REGISTRY:
        raise ValueError(f"target {target.name!r} already registered")
    _REGISTRY[target.name] = target
    return target


def get_target(name: str) -> Target:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_targets() -> List[Target]:
    """Every registered target, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------------------
# shrinking helpers
# --------------------------------------------------------------------------


def _shrink_int(value: int) -> Iterator[int]:
    """Candidate smaller values for an integer (toward 0)."""
    if value > 0:
        yield 0
        if value > 1:
            yield value // 2
            yield value - 1


def _shrink_codec_case(case: Case) -> Iterator[Case]:
    """Strictly-smaller variants of a codec case.

    Order matters: dropping whole fault positions first (the biggest
    structural simplification), then zeroing data symbols, then
    shrinking magnitudes bit by bit — greedy descent then finds a
    near-minimal failing pattern in few checks.
    """
    for key in ("error", "erasure"):
        positions = case[f"{key}_positions"]
        for i in range(len(positions)):
            smaller = dict(case)
            smaller[f"{key}_positions"] = (
                positions[:i] + positions[i + 1 :]
            )
            mags = case[f"{key}_magnitudes"]
            smaller[f"{key}_magnitudes"] = mags[:i] + mags[i + 1 :]
            yield smaller
    data = case["data"]
    for i, sym in enumerate(data):
        if sym != 0:
            smaller = dict(case)
            smaller["data"] = data[:i] + [0] + data[i + 1 :]
            yield smaller
    for key in ("error_magnitudes", "erasure_magnitudes"):
        mags = case[key]
        for i, mag in enumerate(mags):
            if mag > 1:
                smaller = dict(case)
                smaller[key] = mags[:i] + [mag >> 1] + mags[i + 1 :]
                yield smaller


def _shrink_pairs_case(case: Case) -> Iterator[Case]:
    """Shrink a gf pair-list case: drop pairs, then halve operand values."""
    pairs = case["pairs"]
    for i in range(len(pairs)):
        if len(pairs) > 1:
            yield {**case, "pairs": pairs[:i] + pairs[i + 1 :]}
    for i, (a, b) in enumerate(pairs):
        for sa in _shrink_int(a):
            yield {**case, "pairs": pairs[:i] + [[sa, b]] + pairs[i + 1 :]}
        for sb in _shrink_int(b):
            yield {**case, "pairs": pairs[:i] + [[a, sb]] + pairs[i + 1 :]}


def _shrink_ctmc_case(case: Case) -> Iterator[Case]:
    """Shrink a ctmc case: drop transitions, then drop time points."""
    transitions = case["transitions"]
    for i in range(len(transitions)):
        yield {
            **case,
            "transitions": transitions[:i] + transitions[i + 1 :],
        }
    times = case["times"]
    for i in range(len(times)):
        if len(times) > 1:
            yield {**case, "times": times[:i] + times[i + 1 :]}


def _no_shrink(_case: Case) -> Iterator[Case]:
    return iter(())


# --------------------------------------------------------------------------
# induced-bug predicates (harness self-test mode)
# --------------------------------------------------------------------------


def _induced_codec_bug(case: Case) -> Optional[Mismatch]:
    """Artificial bug: "fails" whenever any injected error magnitude is odd.

    Monotone under the codec shrinker (dropping other faults keeps one
    odd magnitude failing; halving eventually reaches magnitude 1, which
    is odd), so greedy shrinking provably converges to a single-error
    repro — exactly what the self-test asserts.
    """
    odd = [m for m in case.get("error_magnitudes", []) if m % 2 == 1]
    if odd:
        return Mismatch(
            "induced bug: odd error magnitude present",
            {"odd_magnitudes": odd},
        )
    return None


def _induced_pairs_bug(case: Case) -> Optional[Mismatch]:
    """Artificial bug for gf cases: fails while any operand pair is nonzero."""
    nonzero = [p for p in case.get("pairs", []) if p[0] or p[1]]
    if nonzero:
        return Mismatch(
            "induced bug: nonzero operand pair present",
            {"nonzero_pairs": nonzero[:4]},
        )
    return None


def _induced_ctmc_bug(case: Case) -> Optional[Mismatch]:
    """Artificial bug for ctmc cases: fails while any transition remains."""
    if case.get("transitions"):
        return Mismatch(
            "induced bug: chain has transitions",
            {"num_transitions": len(case["transitions"])},
        )
    return None


def _induced_generic_bug(case: Case) -> Optional[Mismatch]:
    return Mismatch("induced bug: unconditional", {})


# --------------------------------------------------------------------------
# gf layer
# --------------------------------------------------------------------------

_GF_WIDTHS = (3, 4, 5, 8)


def _gen_gf_case(rng: np.random.Generator) -> Case:
    m = _GF_WIDTHS[int(rng.integers(0, len(_GF_WIDTHS)))]
    order = 1 << m
    count = int(rng.integers(1, 33))
    pairs = [
        [int(a), int(b)]
        for a, b in rng.integers(0, order, size=(count, 2))
    ]
    return {"kind": "gf", "m": m, "pairs": pairs}


def _check_gf_mul(case: Case) -> Optional[Mismatch]:
    from ..gf import GF2m
    from ..gf.batch import batch_field

    m = case["m"]
    gf = GF2m(m)
    bgf = batch_field(m)
    refs = [
        oracles.gf_mul_reference(m, a, b, gf.prim_poly)
        for a, b in case["pairs"]
    ]
    for (a, b), ref in zip(case["pairs"], refs):
        got = gf.mul(a, b)
        if got != ref:
            return Mismatch(
                "scalar GF2m.mul disagrees with carry-less reference",
                {"m": m, "a": a, "b": b, "got": got, "expected": ref},
            )
        # division must invert multiplication (checked against the
        # reference product so a shared mul/div table bug cannot cancel)
        if b != 0 and gf.div(ref, b) != a:
            return Mismatch(
                "GF2m.div does not invert the reference product",
                {"m": m, "a": a, "b": b, "product": ref},
            )
    arr = np.asarray(case["pairs"], dtype=np.int64)
    got_batch = bgf.mul(arr[:, 0], arr[:, 1])
    if got_batch.tolist() != refs:
        bad = int(np.nonzero(got_batch != np.asarray(refs))[0][0])
        return Mismatch(
            "BatchGF.mul disagrees with carry-less reference",
            {
                "m": m,
                "pair": case["pairs"][bad],
                "got": int(got_batch[bad]),
                "expected": refs[bad],
            },
        )
    return None


# --------------------------------------------------------------------------
# rs layer
# --------------------------------------------------------------------------


def _decode_or_none(code, received, erasures):
    from ..rs import RSDecodingError

    try:
        result = code.decode(received, erasure_positions=erasures)
        return result, None
    except RSDecodingError as exc:
        return None, str(exc)


def _gen_rs_decode_case(rng: np.random.Generator) -> Case:
    return gen.gen_codec_case(rng, configs=gen.TINY_CONFIGS)


def _check_rs_decode(case: Case) -> Optional[Mismatch]:
    """Scalar decoder vs exhaustive minimum-distance oracle (tiny codes).

    The oracle is definitive: a codeword within the bounded-distance
    sphere exists iff decoding must succeed, and by MDS uniqueness any
    success must return exactly that codeword (even for beyond-capacity
    inputs where the decoder "mis-corrects" — the mis-correction target
    is lawful, and the oracle knows which word it is).
    """
    code = gen.build_codec(case)
    codeword, received = gen.apply_corruption(code, case)
    erasures = case["erasure_positions"]
    result, error = _decode_or_none(code, received, erasures)
    oracle_word, oracle_errors = oracles.exhaustive_decode(
        code, received, erasures
    )
    if result is None and oracle_word is not None:
        return Mismatch(
            "decoder rejected a word with a codeword inside the "
            "bounded-distance sphere",
            {
                "decoder_error": error,
                "oracle_codeword": oracle_word,
                "oracle_num_errors": oracle_errors,
                "received": received,
            },
        )
    if result is not None:
        if oracle_word is None:
            return Mismatch(
                "decoder accepted a word with no codeword inside the "
                "bounded-distance sphere",
                {"decoded": result.codeword, "received": received},
            )
        if result.codeword != oracle_word:
            return Mismatch(
                "decoder and minimum-distance oracle corrected to "
                "different codewords",
                {"decoded": result.codeword, "oracle": oracle_word},
            )
    # Where the textbook syndrome-table oracle is affordable and the
    # pattern is error-only, it must agree too (independent third vote).
    if not erasures:
        try:
            table_word = oracles.syndrome_table_decode(code, received)
        except ValueError:
            table_word = None  # table too large for this config
        else:
            decoded = result.codeword if result is not None else None
            if table_word != decoded:
                return Mismatch(
                    "syndrome-table oracle disagrees with decoder",
                    {"table": table_word, "decoded": decoded},
                )
    return None


def _gen_rs_parity_case(rng: np.random.Generator) -> Case:
    return gen.gen_codec_case(rng, configs=gen.FULL_CONFIGS)


def _check_rs_solver_parity(case: Case) -> Optional[Mismatch]:
    """Berlekamp-Massey vs Euclid: identical success flags and words.

    Inside capability this is a theorem (both solve the same key
    equation).  Beyond capability both decoders still run their full
    verification chain (degree, Chien root count, post-syndromes), and
    empirically agree pattern-for-pattern; a divergence here is either a
    solver bug or a genuinely interesting boundary pattern — both worth
    an artifact.
    """
    bm_code = gen.build_codec(case, key_solver="bm")
    eu_code = gen.build_codec(case, key_solver="euclid")
    _codeword, received = gen.apply_corruption(bm_code, case)
    erasures = case["erasure_positions"]
    bm_result, bm_error = _decode_or_none(bm_code, received, erasures)
    eu_result, eu_error = _decode_or_none(eu_code, received, erasures)
    if (bm_result is None) != (eu_result is None):
        return Mismatch(
            "BM and Euclid disagree on decodability",
            {
                "bm": "failed: " + bm_error if bm_result is None else "decoded",
                "euclid": (
                    "failed: " + eu_error if eu_result is None else "decoded"
                ),
                "received": received,
            },
        )
    if bm_result is not None and bm_result.codeword != eu_result.codeword:
        return Mismatch(
            "BM and Euclid corrected to different codewords",
            {"bm": bm_result.codeword, "euclid": eu_result.codeword},
        )
    if bm_result is not None and (
        bm_result.num_errors != eu_result.num_errors
        or bm_result.error_positions != eu_result.error_positions
    ):
        return Mismatch(
            "BM and Euclid report different correction metadata",
            {
                "bm": [bm_result.num_errors, bm_result.error_positions],
                "euclid": [eu_result.num_errors, eu_result.error_positions],
            },
        )
    return None


def _gen_rs_batch_case(rng: np.random.Generator) -> Case:
    """A small batch of codec cases sharing one configuration."""
    first = gen.gen_codec_case(rng, configs=gen.FULL_CONFIGS)
    n, k, m = first["n"], first["k"], first["m"]
    words = [first]
    for _ in range(int(rng.integers(0, 5))):
        words.append(
            gen.gen_codec_case(rng, configs=[(n, k, m)])
        )
    return {"kind": "codec-batch", "n": n, "k": k, "m": m, "words": words}


def _check_rs_batch_scalar(case: Case) -> Optional[Mismatch]:
    """Batch codec vs scalar codec, word for word, across all strata."""
    from ..rs import BatchRSCodec

    scalar = gen.build_codec(case["words"][0])
    batch = BatchRSCodec(case["n"], case["k"], m=case["m"], scalar=scalar)
    return _diff_backend_vs_scalar(case, scalar, batch)


def _compiled_codec(case: Case, scalar):
    """The compiled backend for a case, wherever the fuzz run happens.

    ``kernels="any"`` prefers the jitted kernels and falls back to the
    numpy forms of the same bit-sliced algorithm, so the nightly fuzz
    legs exercise the compiled backend's planes/codegen path even on
    runners without numba.
    """
    from ..rs.backends.compiled import CompiledRSCodec

    return CompiledRSCodec(
        case["n"], case["k"], m=case["m"], scalar=scalar, kernels="any"
    )


def _check_rs_compiled_scalar(case: Case) -> Optional[Mismatch]:
    """Compiled (bit-sliced) backend vs scalar codec, word for word."""
    scalar = gen.build_codec(case["words"][0])
    return _diff_backend_vs_scalar(case, scalar, _compiled_codec(case, scalar))


def _check_rs_compiled_batch(case: Case) -> Optional[Mismatch]:
    """Compiled backend vs numpy batch codec: arrays must be bit-identical.

    Stricter than the scalar diff: the two batch engines share the whole
    harness, so their encode outputs, syndrome matrices, masks, and
    per-word outcomes must agree exactly — any divergence is a kernel
    bug (planes codegen, XOR walk, LFSR step), not a tolerance question.
    """
    from ..rs import BatchRSCodec, RSDecodingError

    scalar = gen.build_codec(case["words"][0])
    numpy_codec = BatchRSCodec(case["n"], case["k"], m=case["m"], scalar=scalar)
    compiled = _compiled_codec(case, scalar)
    data = [w["data"] for w in case["words"]]
    enc_numpy = numpy_codec.encode_batch(data)
    enc_compiled = compiled.encode_batch(data)
    if not np.array_equal(enc_numpy, enc_compiled):
        return Mismatch(
            "compiled encode_batch differs from numpy backend",
            {"numpy": enc_numpy, "compiled": enc_compiled},
        )
    received, erasures = [], []
    for word_case in case["words"]:
        _cw, rec = gen.apply_corruption(scalar, word_case)
        received.append(rec)
        erasures.append(word_case["erasure_positions"])
    rec_arr = np.asarray(received)
    synd_numpy = numpy_codec.syndromes_batch(rec_arr)
    synd_compiled = compiled.syndromes_batch(rec_arr)
    if not np.array_equal(synd_numpy, synd_compiled):
        return Mismatch(
            "compiled syndromes_batch differs from numpy backend",
            {"numpy": synd_numpy, "compiled": synd_compiled},
        )
    report_numpy = numpy_codec.decode_batch(rec_arr, erasures)
    report_compiled = compiled.decode_batch(rec_arr, erasures)
    if not np.array_equal(report_numpy.ok, report_compiled.ok) or (
        not np.array_equal(report_numpy.clean, report_compiled.clean)
    ):
        return Mismatch(
            "compiled decode masks differ from numpy backend",
            {
                "numpy_ok": report_numpy.ok,
                "compiled_ok": report_compiled.ok,
                "numpy_clean": report_numpy.clean,
                "compiled_clean": report_compiled.clean,
            },
        )
    for i in range(len(received)):
        a, b = report_numpy[i], report_compiled[i]
        if isinstance(a, RSDecodingError) or isinstance(b, RSDecodingError):
            if type(a) is not type(b) or str(a) != str(b):
                return Mismatch(
                    "compiled and numpy word outcomes differ",
                    {"index": i, "numpy": str(a), "compiled": str(b)},
                )
        elif a.codeword != b.codeword or a.data != b.data:
            return Mismatch(
                "compiled and numpy corrected to different words",
                {"index": i, "numpy": a.codeword, "compiled": b.codeword},
            )
    return None


def _diff_backend_vs_scalar(
    case: Case, scalar, batch
) -> Optional[Mismatch]:
    """Any batch-contract backend vs the scalar codec, word for word."""
    from ..rs import RSDecodingError

    encoded_scalar = [scalar.encode(w["data"]) for w in case["words"]]
    encoded_batch = batch.encode_batch([w["data"] for w in case["words"]])
    for i, (row, expected) in enumerate(zip(encoded_batch, encoded_scalar)):
        if row.tolist() != expected:
            return Mismatch(
                "encode_batch row differs from scalar encode",
                {"index": i, "batch": row.tolist(), "scalar": expected},
            )
    received, erasures = [], []
    for word_case in case["words"]:
        _cw, rec = gen.apply_corruption(scalar, word_case)
        received.append(rec)
        erasures.append(word_case["erasure_positions"])
    report = batch.decode_batch(np.asarray(received), erasures)
    for i, rec in enumerate(received):
        expected, error = _decode_or_none(scalar, rec, erasures[i])
        outcome = report[i]
        if isinstance(outcome, RSDecodingError):
            if expected is not None:
                return Mismatch(
                    "batch word failed where scalar decoded",
                    {"index": i, "batch_error": str(outcome)},
                )
            if str(outcome) != error:
                return Mismatch(
                    "batch and scalar raised different messages",
                    {"index": i, "batch": str(outcome), "scalar": error},
                )
        else:
            if expected is None:
                return Mismatch(
                    "batch word decoded where scalar failed",
                    {"index": i, "scalar_error": error},
                )
            if (
                outcome.codeword != expected.codeword
                or outcome.data != expected.data
                or outcome.num_errors != expected.num_errors
                or outcome.num_erasures != expected.num_erasures
                or outcome.corrected != expected.corrected
                or outcome.error_positions != expected.error_positions
            ):
                return Mismatch(
                    "batch and scalar decode results differ",
                    {
                        "index": i,
                        "batch": outcome.codeword,
                        "scalar": expected.codeword,
                    },
                )
    return None


def _shrink_batch_case(case: Case) -> Iterator[Case]:
    words = case["words"]
    for i in range(len(words)):
        if len(words) > 1:
            yield {**case, "words": words[:i] + words[i + 1 :]}
    for i, word in enumerate(words):
        for smaller in _shrink_codec_case(word):
            yield {**case, "words": words[:i] + [smaller] + words[i + 1 :]}


def _induced_batch_bug(case: Case) -> Optional[Mismatch]:
    for word in case.get("words", []):
        mismatch = _induced_codec_bug(word)
        if mismatch is not None:
            return mismatch
    return None


# --------------------------------------------------------------------------
# markov layer
# --------------------------------------------------------------------------

#: Absolute tolerance for three-way transient agreement.  expm/Taylor
#: deliver absolute accuracy ~1e-13 on these small chains; uniformization
#: is relatively accurate, so the absolute gap is bounded by the same.
_TRANSIENT_ATOL = 1e-9


def _check_markov_transient(case: Case) -> Optional[Mismatch]:
    """Uniformization vs scipy expm vs truncated-Taylor oracle."""
    from ..markov.solvers import transient_expm, transient_uniformization

    chain = gen.build_ctmc_from_case(case)
    times = np.asarray(case["times"], dtype=float)
    solutions = {
        "uniformization": transient_uniformization(chain, times),
        "expm": transient_expm(chain, times),
        "taylor-oracle": oracles.transient_taylor_oracle(chain, times),
    }
    for name, sol in solutions.items():
        row_sums = sol.sum(axis=1)
        if np.any(np.abs(row_sums - 1.0) > 1e-8):
            return Mismatch(
                f"{name} transient rows do not sum to 1",
                {"solver": name, "row_sums": row_sums},
            )
        if np.any(sol < -1e-12):
            return Mismatch(
                f"{name} produced negative probabilities",
                {"solver": name, "min": float(sol.min())},
            )
    names = sorted(solutions)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            diff = float(np.abs(solutions[a] - solutions[b]).max())
            if diff > _TRANSIENT_ATOL:
                return Mismatch(
                    f"{a} and {b} transient solutions diverge",
                    {"pair": [a, b], "max_abs_diff": diff},
                )
    return None


# --------------------------------------------------------------------------
# memory layer
# --------------------------------------------------------------------------


def _build_memory_model(case: Case):
    from ..memory import duplex_model, simplex_model

    factory = simplex_model if case["arrangement"] == "simplex" else duplex_model
    return factory(
        case["n"],
        case["k"],
        m=case["m"],
        seu_per_bit_day=case["seu_per_bit_day"],
        erasure_per_symbol_day=case["erasure_per_symbol_day"],
        scrub_period_seconds=case["scrub_period_seconds"],
    )


def _gen_memory_analytic_case(rng: np.random.Generator) -> Case:
    return gen.gen_memory_case(rng, pure_regime=True, with_scrub=False)


def _check_memory_analytic(case: Case) -> Optional[Mismatch]:
    """Closed-form fail probability vs the CTMC transient solution.

    Both derivations claim full relative accuracy in their overlap, so
    the gate is a *relative* tolerance plus a deep-tail absolute floor.
    """
    from ..memory import duplex_fail_probability, simplex_fail_probability

    model = _build_memory_model(case)
    times = np.asarray(case["times_hours"], dtype=float)
    if case["arrangement"] == "simplex":
        closed = simplex_fail_probability(model, times)
    else:
        closed = duplex_fail_probability(model, times)
    chain = model.fail_probability(times, method="uniformization")
    scale = np.maximum(np.maximum(np.abs(closed), np.abs(chain)), 1e-280)
    rel = np.abs(closed - chain) / scale
    worst = int(np.argmax(rel))
    if rel[worst] > 1e-6 and abs(closed[worst] - chain[worst]) > 1e-14:
        return Mismatch(
            "closed-form and CTMC fail probabilities diverge",
            {
                "time_hours": float(times[worst]),
                "closed_form": float(closed[worst]),
                "ctmc": float(chain[worst]),
                "relative_error": float(rel[worst]),
            },
        )
    return None


def _gen_memory_mc_case(rng: np.random.Generator) -> Case:
    return gen.gen_mc_case(rng)


#: z for the MC comparison interval: 5 sigma two-sided (~6e-7 per
#: trial), so a correct implementation false-alarms less than once per
#: thousand nightly fuzz runs while any systematic model/physics
#: divergence — which does not shrink with z — still trips reliably.
_MC_Z = 5.0


def _check_memory_mc(case: Case) -> Optional[Mismatch]:
    """Analytic chain vs the batched codec-level Monte-Carlo engine.

    The simplex chain must land inside the (4-sigma) Wilson interval of
    its own physics.  The duplex chain is *documented as conservative*
    (the paper's either-word fail rule over-counts; see EXPERIMENTS.md),
    so its one-sided contract is ``model >= ci_low`` only.
    """
    from ..rs import RSCode
    from ..simulator.montecarlo import (
        simulate_fail_probability_batched,
        wilson_interval,
    )

    model = _build_memory_model(
        {
            **case,
            "erasure_per_symbol_day": 0.0,
            "scrub_period_seconds": None,
        }
    )
    p_model = float(model.fail_probability([case["t_end_hours"]])[0])
    code = RSCode(case["n"], case["k"], m=case["m"])
    estimate = simulate_fail_probability_batched(
        case["arrangement"],
        code,
        case["t_end_hours"],
        seu_per_bit=case["seu_per_bit_day"] / 24.0,
        erasure_per_symbol=0.0,
        trials=case["trials"],
        seed=case["mc_seed"],
        chunk_size=256,
    )
    ci_low, ci_high = wilson_interval(
        estimate.failures, estimate.trials, z=_MC_Z
    )
    detail = {
        "model_probability": p_model,
        "mc_probability": estimate.probability,
        "mc_failures": estimate.failures,
        "mc_trials": estimate.trials,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "z": _MC_Z,
    }
    if case["arrangement"] == "duplex":
        if p_model < ci_low:
            return Mismatch(
                "duplex chain fell below the MC interval (the chain must "
                "be conservative, never optimistic)",
                detail,
            )
        return None
    if not ci_low <= p_model <= ci_high:
        return Mismatch(
            "simplex chain outside the MC Wilson interval", detail
        )
    return None


def _shrink_memory_mc(case: Case) -> Iterator[Case]:
    if case["trials"] > 50:
        yield {**case, "trials": case["trials"] // 2}
    if case["t_end_hours"] > 1.0:
        yield {**case, "t_end_hours": case["t_end_hours"] / 2.0}


def _gen_scenario_parity_case(rng: np.random.Generator) -> Case:
    return gen.gen_scenario_parity_case(rng)


def _check_scenario_parity(case: Case) -> Optional[Mismatch]:
    """I.i.d.-reducible scenario cells vs the analytic bridge.

    The pattern sampler's compound-Poisson law is anchored to the i.i.d.
    total arrival rate, so any transient ``1BIT``/``1SYM`` mixture —
    optionally under a piecewise rate schedule — must agree with the
    same analytic prediction the campaign layer publishes through
    :func:`repro.simulator.campaign.cell_model_probability`.  The gate
    mirrors ``memory-mc-ber``: two-sided 5-sigma Wilson for simplex,
    one-sided (``model >= ci_low``) for the documented-conservative
    duplex chain.  The check also asserts the robustness-accounting
    invariant that every failure lands in exactly one bucket:
    ``failures == silent_miscorrections + detected_uncorrectable``.
    """
    from ..rs import RSCode
    from ..simulator.campaign import CampaignCell, cell_model_probability
    from ..simulator.montecarlo import (
        simulate_fail_probability_batched,
        wilson_interval,
    )
    from ..simulator.patterns import parse_pattern

    pattern = parse_pattern(case["pattern"])
    if not pattern.iid_reducible:
        return Mismatch(
            "generator produced a non-iid-reducible pattern; the parity "
            "contract only covers in-model physics",
            {"pattern": case["pattern"]},
        )
    cell = CampaignCell(
        arrangement=case["arrangement"],
        seu_per_bit_day=case["seu_per_bit_day"],
        erasure_per_symbol_day=0.0,
        scrub_period_seconds=None,
        pattern=case["pattern"],
        schedule=case["schedule"],
    )
    p_model = cell_model_probability(
        cell, case["n"], case["k"], case["m"], case["t_end_hours"]
    )
    if p_model is None:
        return Mismatch(
            "analytic bridge declared an iid-reducible cell out of model",
            {"pattern": case["pattern"], "schedule": case["schedule"]},
        )
    code = RSCode(case["n"], case["k"], m=case["m"])
    estimate = simulate_fail_probability_batched(
        case["arrangement"],
        code,
        case["t_end_hours"],
        seu_per_bit=case["seu_per_bit_day"] / 24.0,
        erasure_per_symbol=0.0,
        trials=case["trials"],
        seed=case["mc_seed"],
        chunk_size=256,
        pattern=case["pattern"],
        schedule=case["schedule"],
    )
    detail = {
        "pattern": case["pattern"],
        "schedule": case["schedule"],
        "model_probability": p_model,
        "mc_probability": estimate.probability,
        "mc_failures": estimate.failures,
        "mc_trials": estimate.trials,
        "silent_miscorrections": estimate.silent_miscorrections,
        "detected_uncorrectable": estimate.detected_uncorrectable,
        "z": _MC_Z,
    }
    split = (estimate.silent_miscorrections or 0) + (
        estimate.detected_uncorrectable or 0
    )
    if estimate.failures != split:
        return Mismatch(
            "failure mass does not split into the two robustness buckets",
            detail,
        )
    ci_low, ci_high = wilson_interval(
        estimate.failures, estimate.trials, z=_MC_Z
    )
    detail["ci_low"] = ci_low
    detail["ci_high"] = ci_high
    if case["arrangement"] == "duplex":
        if p_model < ci_low:
            return Mismatch(
                "duplex chain fell below the scenario MC interval (the "
                "chain must be conservative, never optimistic)",
                detail,
            )
        return None
    if not ci_low <= p_model <= ci_high:
        return Mismatch(
            "simplex chain outside the scenario MC Wilson interval", detail
        )
    return None


def _shrink_scenario_parity(case: Case) -> Iterator[Case]:
    if case["trials"] > 50:
        yield {**case, "trials": case["trials"] // 2}
    if case["t_end_hours"] > 1.0:
        yield {**case, "t_end_hours": case["t_end_hours"] / 2.0}
    if case["schedule"] is not None:
        yield {**case, "schedule": None}
    if case["pattern"] != "1BIT":
        yield {**case, "pattern": "1BIT"}


def _shrink_memory_case(case: Case) -> Iterator[Case]:
    times = case["times_hours"]
    for i in range(len(times)):
        if len(times) > 1:
            yield {**case, "times_hours": times[:i] + times[i + 1 :]}


# --------------------------------------------------------------------------
# journal-roundtrip: corruption -> repair/resume -> bit-identity
# --------------------------------------------------------------------------


def _gen_journal_case(rng: np.random.Generator) -> Case:
    return {
        "trials": int(rng.integers(40, 121)),
        "chunk_size": int(rng.choice([15, 20, 25, 30])),
        "seed": int(rng.integers(0, 2**31)),
        "mode": str(rng.choice(["flip", "truncate"])),
        # Where to hit the journal, as a fraction of its length (the
        # file's byte size varies with timing digits in the payloads, so
        # the case carries a position *fraction*, not an offset).
        "offset_frac": float(rng.uniform(0.0, 1.0)),
        "xor": int(rng.integers(1, 256)),
        "repair": bool(rng.integers(0, 2)),
    }


def _check_journal_roundtrip(case: Case) -> Optional[Mismatch]:
    """Corrupt one point of a recorded journal; healing must be exact.

    The asserted property is universal — *any* single byte flip or
    truncation must leave resume (with or without a prior
    ``repair_journal``) bit-identical to the uninterrupted run and must
    never raise — so it holds regardless of the journal's exact bytes.
    """
    import tempfile
    import warnings as _warnings
    from pathlib import Path

    from ..rs import RSCode
    from ..runtime import CheckpointJournal, RuntimeConfig, repair_journal
    from ..simulator import simulate_fail_probability_batched

    code = RSCode(18, 16, m=8)
    lam = 2e-3 / 24.0

    def run(journal=None):
        runtime = RuntimeConfig(journal=journal) if journal is not None else None
        return simulate_fail_probability_batched(
            "simplex",
            code,
            48.0,
            lam,
            0.0,
            case["trials"],
            seed=case["seed"],
            chunk_size=case["chunk_size"],
            runtime=runtime,
        )

    detail: Dict[str, Any] = dict(case)
    with tempfile.TemporaryDirectory(prefix="journal-roundtrip-") as tmp:
        path = Path(tmp) / "ckpt.jsonl"
        reference = run()
        with CheckpointJournal(path) as journal:
            recorded = run(journal)
        if recorded != reference:
            return Mismatch(
                "journaled run differs from the plain run before any "
                "corruption was injected",
                detail,
            )
        blob = bytearray(path.read_bytes())
        offset = min(len(blob) - 1, int(case["offset_frac"] * len(blob)))
        detail["offset"] = offset
        detail["journal_bytes"] = len(blob)
        if case["mode"] == "flip":
            blob[offset] ^= case["xor"]
            path.write_bytes(bytes(blob))
        else:
            path.write_bytes(bytes(blob[:offset]))
        try:
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore")
                if case["repair"]:
                    detail["repair_actions"] = repair_journal(path)
                with CheckpointJournal(path) as journal:
                    resumed = run(journal)
        except Exception as exc:  # never a traceback, whatever the damage
            return Mismatch(
                f"corrupted journal raised {type(exc).__name__} instead "
                "of healing",
                {**detail, "error": repr(exc)},
            )
        if resumed != reference:
            return Mismatch(
                "resume after corruption is not bit-identical to the "
                "uninterrupted run",
                {
                    **detail,
                    "reference_probability": reference.probability,
                    "resumed_probability": resumed.probability,
                    "reference_failures": reference.failures,
                    "resumed_failures": resumed.failures,
                },
            )
    return None


def _shrink_journal_case(case: Case) -> Iterator[Case]:
    if case["trials"] > 40:
        yield {**case, "trials": max(40, case["trials"] // 2)}
    if case["repair"]:
        yield {**case, "repair": False}
    if case["mode"] == "flip" and case["xor"] > 1:
        yield {**case, "xor": 1}


# --------------------------------------------------------------------------
# mc-streaming-vs-final: incremental snapshots vs one-shot aggregation
# --------------------------------------------------------------------------


def _gen_streaming_case(rng: np.random.Generator) -> Case:
    return {
        "arrangement": str(rng.choice(["simplex", "duplex"])),
        "trials": int(rng.integers(60, 201)),
        "chunk_size": int(rng.choice([15, 20, 25, 40])),
        "seed": int(rng.integers(0, 2**31)),
        "seu_per_bit_day": float(rng.choice([1e-3, 2e-3, 4e-3])),
        "rel_ci": float(rng.choice([0.3, 0.5, 1.0, 2.0])),
        "min_trials": int(rng.choice([0, 30, 60])),
        "method": str(rng.choice(["wilson", "jeffreys"])),
    }


def _check_mc_streaming_vs_final(case: Case) -> Optional[Mismatch]:
    """Streaming snapshots vs the final estimate, stop prefix vs a
    literal re-derivation of the stopping rule.

    Three independently-checkable contracts:

    1. the streaming trajectory is internally coherent (monotone
       cumulative counts, ``probability == failures/trials`` exactly,
       intervals reproducible from the published counts);
    2. the *last* snapshot of a full run equals the one-shot final
       estimate bit for bit;
    3. an early-stopped run returns exactly the estimate a straight-line
       scan of the per-chunk deltas predicts — recomputed here without
       :class:`~repro.stats.AdaptiveStopper`'s out-of-order frontier
       machinery, so the two stopping implementations vote.
    """
    from ..rs import RSCode
    from ..runtime import RuntimeConfig
    from ..simulator import simulate_fail_probability_batched
    from ..stats import StoppingRule, binomial_interval, relative_halfwidth

    code = RSCode(18, 16, m=8)
    lam = case["seu_per_bit_day"] / 24.0

    def run(stop=None, on_snapshot=None):
        runtime = RuntimeConfig(
            executor="serial", stop=stop, on_snapshot=on_snapshot
        )
        return simulate_fail_probability_batched(
            case["arrangement"],
            code,
            48.0,
            lam,
            0.0,
            case["trials"],
            seed=case["seed"],
            chunk_size=case["chunk_size"],
            runtime=runtime,
        )

    detail: Dict[str, Any] = dict(case)
    snapshots: List[Any] = []
    reference = run(on_snapshot=snapshots.append)

    # 1. trajectory coherence: one snapshot per chunk, monotone counts,
    #    exact ratio, interval reproducible from the published counts.
    if not snapshots:
        return Mismatch("full run produced no streaming snapshots", detail)
    prev_f = prev_t = 0
    deltas: List[Tuple[int, int]] = []
    for snap in snapshots:
        if snap.trials < prev_t or snap.failures < prev_f:
            return Mismatch(
                "streaming snapshot counts are not monotone",
                {**detail, "snapshot": snap.as_dict()},
            )
        expected_p = snap.failures / snap.trials if snap.trials else 0.0
        if snap.probability != expected_p:
            return Mismatch(
                "snapshot probability is not exactly failures/trials",
                {**detail, "snapshot": snap.as_dict()},
            )
        lo, hi = binomial_interval(snap.failures, snap.trials)
        if (lo, hi) != (snap.ci_low, snap.ci_high):
            return Mismatch(
                "snapshot interval not reproducible from its counts",
                {**detail, "snapshot": snap.as_dict(), "recomputed": [lo, hi]},
            )
        deltas.append((snap.failures - prev_f, snap.trials - prev_t))
        prev_f, prev_t = snap.failures, snap.trials

    # 2. last snapshot == one-shot final estimate, bit for bit.
    last = snapshots[-1]
    if (last.failures, last.trials, last.probability) != (
        reference.failures,
        reference.trials,
        reference.probability,
    ):
        return Mismatch(
            "final streaming snapshot differs from the one-shot estimate",
            {
                **detail,
                "snapshot": last.as_dict(),
                "final": [reference.failures, reference.trials],
            },
        )

    # 3. early stop == literal prefix scan of the same deltas.
    stopped = run(
        stop=StoppingRule(
            rel_ci=case["rel_ci"],
            min_trials=case["min_trials"],
            method=case["method"],
        )
    )
    cum_f = cum_t = 0
    expected_f, expected_t = reference.failures, reference.trials
    for chunk_f, chunk_t in deltas:
        cum_f += chunk_f
        cum_t += chunk_t
        if cum_t < case["min_trials"] or cum_f <= 0:
            continue
        lo, hi = binomial_interval(cum_f, cum_t, method=case["method"])
        if relative_halfwidth(cum_f, cum_t, lo, hi) <= case["rel_ci"]:
            expected_f, expected_t = cum_f, cum_t
            break
    detail["expected_failures"] = expected_f
    detail["expected_trials"] = expected_t
    if (stopped.failures, stopped.trials) != (expected_f, expected_t):
        return Mismatch(
            "adaptive stop prefix differs from the literal rule scan",
            {**detail, "got": [stopped.failures, stopped.trials]},
        )
    if stopped.probability != (
        expected_f / expected_t if expected_t else 0.0
    ):
        return Mismatch(
            "early-stopped probability is not exactly failures/trials",
            {**detail, "got": stopped.probability},
        )
    lo, hi = binomial_interval(expected_f, expected_t)
    if (lo, hi) != (stopped.ci_low, stopped.ci_high):
        return Mismatch(
            "early-stopped interval not reproducible from its counts",
            {**detail, "got": [stopped.ci_low, stopped.ci_high]},
        )
    if stopped.stopped_early != (expected_t < reference.trials):
        return Mismatch(
            "stopped_early flag inconsistent with the trials actually used",
            {**detail, "flag": stopped.stopped_early},
        )
    return None


def _shrink_streaming_case(case: Case) -> Iterator[Case]:
    if case["trials"] > 60:
        yield {**case, "trials": max(60, case["trials"] // 2)}
    if case["min_trials"]:
        yield {**case, "min_trials": 0}
    if case["method"] != "wilson":
        yield {**case, "method": "wilson"}


# --------------------------------------------------------------------------
# registration
# --------------------------------------------------------------------------

register_target(
    Target(
        name="gf-mul",
        layers=("gf",),
        description=(
            "Scalar GF2m and vectorized BatchGF multiplication/division "
            "vs a quadratic-time carry-less reference multiplier"
        ),
        generate=_gen_gf_case,
        check=_check_gf_mul,
        shrink=_shrink_pairs_case,
        induced_check=_induced_pairs_bug,
    )
)

register_target(
    Target(
        name="rs-decode",
        layers=("gf", "rs"),
        description=(
            "Scalar errors-and-erasures decoder vs the exhaustive "
            "minimum-distance oracle (and the textbook syndrome-table "
            "oracle where affordable) on tiny codes, all capacity strata"
        ),
        generate=_gen_rs_decode_case,
        check=_check_rs_decode,
        shrink=_shrink_codec_case,
        induced_check=_induced_codec_bug,
    )
)

register_target(
    Target(
        name="rs-solver-parity",
        layers=("rs",),
        description=(
            "Berlekamp-Massey vs Euclid key-equation solvers through the "
            "full decode pipeline: identical success flags, words, and "
            "correction metadata"
        ),
        generate=_gen_rs_parity_case,
        check=_check_rs_solver_parity,
        shrink=_shrink_codec_case,
        induced_check=_induced_codec_bug,
    )
)

register_target(
    Target(
        name="rs-batch-scalar",
        layers=("gf", "rs"),
        description=(
            "Batch codec vs scalar codec word-for-word on stratified "
            "batches (clean through beyond-capacity, erasure-heavy)"
        ),
        generate=_gen_rs_batch_case,
        check=_check_rs_batch_scalar,
        shrink=_shrink_batch_case,
        induced_check=_induced_batch_bug,
    )
)

register_target(
    Target(
        name="rs-compiled-scalar",
        layers=("gf", "rs"),
        description=(
            "Compiled bit-sliced backend (codegen'd GF planes) vs scalar "
            "codec word-for-word on the same stratified batches"
        ),
        generate=_gen_rs_batch_case,
        check=_check_rs_compiled_scalar,
        shrink=_shrink_batch_case,
        induced_check=_induced_batch_bug,
    )
)

register_target(
    Target(
        name="rs-compiled-batch",
        layers=("gf", "rs"),
        description=(
            "Compiled backend vs numpy batch codec: encode rows, syndrome "
            "matrices, clean/ok masks, and per-word outcomes must be "
            "bit-identical"
        ),
        generate=_gen_rs_batch_case,
        check=_check_rs_compiled_batch,
        shrink=_shrink_batch_case,
        induced_check=_induced_batch_bug,
    )
)

register_target(
    Target(
        name="markov-transient",
        layers=("markov",),
        description=(
            "Uniformization vs scipy expm vs a truncated-Taylor oracle "
            "on random well-formed CTMCs (absorbing rows, frozen chains, "
            "stiff rate spreads)"
        ),
        generate=gen.gen_ctmc_case,
        check=_check_markov_transient,
        shrink=_shrink_ctmc_case,
        induced_check=_induced_ctmc_bug,
    )
)

register_target(
    Target(
        name="memory-analytic",
        layers=("memory", "markov"),
        description=(
            "Closed-form no-scrub fail probability vs the CTMC transient "
            "solution on random pure-regime memory configurations"
        ),
        generate=_gen_memory_analytic_case,
        check=_check_memory_analytic,
        shrink=_shrink_memory_case,
        induced_check=_induced_generic_bug,
    )
)

register_target(
    Target(
        name="memory-mc-ber",
        layers=("memory", "simulator"),
        description=(
            "Analytic chain fail probability vs the batched codec-level "
            "Monte-Carlo engine within a 5-sigma Wilson interval "
            "(one-sided for the documented-conservative duplex chain)"
        ),
        generate=_gen_memory_mc_case,
        check=_check_memory_mc,
        shrink=_shrink_memory_mc,
        induced_check=_induced_generic_bug,
    )
)

register_target(
    Target(
        name="journal-roundtrip",
        layers=("runtime", "simulator"),
        description=(
            "Random single-point corruption (byte flip or truncation) of "
            "a recorded v2 checkpoint journal: doctor --repair or direct "
            "resume must heal it and reproduce the bit-identical "
            "campaign estimate, never raise"
        ),
        generate=_gen_journal_case,
        check=_check_journal_roundtrip,
        shrink=_shrink_journal_case,
        induced_check=_induced_generic_bug,
    )
)

register_target(
    Target(
        name="mc-streaming-vs-final",
        layers=("stats", "simulator"),
        description=(
            "Streaming BER snapshots vs the one-shot final estimate "
            "(bit-identical last snapshot, reproducible intervals) and "
            "the adaptive early-stop prefix vs a literal straight-line "
            "recomputation of the stopping rule"
        ),
        generate=_gen_streaming_case,
        check=_check_mc_streaming_vs_final,
        shrink=_shrink_streaming_case,
        induced_check=_induced_generic_bug,
    )
)

register_target(
    Target(
        name="scenario-analytic-parity",
        layers=("memory", "simulator"),
        description=(
            "Random i.i.d.-reducible fault-pattern mixtures (optionally "
            "under a piecewise rate schedule) vs the campaign layer's "
            "analytic bridge within a 5-sigma Wilson interval, plus the "
            "failures == miscorrections + unreadable split invariant"
        ),
        generate=_gen_scenario_parity_case,
        check=_check_scenario_parity,
        shrink=_shrink_scenario_parity,
        induced_check=_induced_generic_bug,
    )
)
